#include "eval/adapt.hh"

#include <algorithm>
#include <optional>

#include "mssp/machine.hh"

namespace mssp
{

AdaptResult
adaptSpeculation(const Program &orig, const ProfileData &profile,
                 const DistillerOptions &dopts,
                 const AdaptOptions &aopts)
{
    AdaptResult out;

    std::vector<uint32_t> dropped = aopts.speculate.despeculated;
    std::sort(dropped.begin(), dropped.end());
    dropped.erase(std::unique(dropped.begin(), dropped.end()),
                  dropped.end());

    unsigned iters = aopts.maxIters ? aopts.maxIters : 1;
    for (unsigned iter = 0; iter < iters; ++iter) {
        SpeculateOptions sopts = aopts.speculate;
        sopts.despeculated = dropped;
        sopts.generation = iter;
        DistilledProgram dist =
            distillSpeculated(orig, profile, dopts, sopts);

        MsspMachine machine(orig, dist, aopts.machine);
        // A per-iteration injector keeps the fault stream a pure
        // function of the plans' seeds, independent of iteration
        // count or prior runs.
        std::optional<FaultInjector> injector;
        if (!aopts.faults.empty()) {
            injector.emplace(aopts.faults.front().seed,
                             aopts.faults);
            machine.setFaultInjector(&*injector);
        }
        MsspResult r = machine.run(aopts.runMaxCycles);

        AdaptIteration rec;
        rec.generation = iter;
        rec.baked = dist.specEdits.size();
        rec.squashEvents = machine.counters().squashEvents;
        rec.halted = r.halted;

        // De-speculate every edit policed by an over-threshold site.
        std::vector<uint32_t> fresh;
        for (const auto &[site, stat] : r.siteStats) {
            if (stat.forked < aopts.minEngagements)
                continue;
            if (stat.squashRate() <= aopts.squashRateThreshold)
                continue;
            for (const SpecEdit &e : dist.specEdits) {
                if (std::binary_search(e.policedBy.begin(),
                                       e.policedBy.end(), site)) {
                    fresh.push_back(e.origPc);
                }
            }
        }
        std::sort(fresh.begin(), fresh.end());
        fresh.erase(std::unique(fresh.begin(), fresh.end()),
                    fresh.end());

        rec.despeculated = fresh;
        out.iterations.push_back(std::move(rec));
        out.dist = std::move(dist);

        if (fresh.empty()) {
            out.converged = true;
            break;
        }
        dropped.insert(dropped.end(), fresh.begin(), fresh.end());
        std::sort(dropped.begin(), dropped.end());
        dropped.erase(std::unique(dropped.begin(), dropped.end()),
                      dropped.end());
    }

    out.despeculated = std::move(dropped);
    return out;
}

} // namespace mssp

#include "eval/suite.hh"

#include <functional>
#include <ostream>

#include "analysis/specplan.hh"
#include "analysis/specsafe.hh"
#include "analysis/verifier.hh"
#include "eval/adapt.hh"
#include "eval/crossval.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sim/thread_annotations.hh"
#include "workloads/workloads.hh"

namespace mssp
{

namespace
{

std::string
fmtG(double v)
{
    return strfmt("%g", v);
}

} // anonymous namespace

size_t
SuiteReport::evalFailures() const
{
    size_t n = 0;
    for (const SuiteWorkloadResult &w : workloads)
        n += w.ok() ? 0 : 1;
    return n;
}

bool
SuiteReport::ok() const
{
    return evalFailures() == 0 && campaign.failures() == 0 &&
           campaign.allTypesFired() && quarantinedTotal() == 0;
}

std::string
SuiteReport::toJson() const
{
    std::string out = "{\"schema\": \"mssp-suite-v5\",\n";
    out += strfmt(" \"seed\": %llu, \"scale\": %s, ",
                  static_cast<unsigned long long>(options.seed),
                  fmtG(options.scale).c_str());
    out += "\"workloads\": [";
    for (size_t i = 0; i < options.workloads.size(); ++i) {
        out += strfmt("%s\"%s\"", i ? ", " : "",
                      options.workloads[i].c_str());
    }
    out += "],\n \"eval\": [\n";
    for (size_t i = 0; i < workloads.size(); ++i) {
        const SuiteWorkloadResult &w = workloads[i];
        out += strfmt(
            "  {\"workload\": \"%s\", "
            "\"lint\": {\"errors\": %zu, \"warnings\": %zu}, "
            "\"semantic\": {\"edits\": %zu, \"proven\": %zu, "
            "\"risky\": %zu, \"unknown\": %zu, \"errors\": %zu}, "
            "\"specsafe\": {\"loads\": %zu, "
            "\"provablyInvariant\": %zu, \"regionInvariant\": %zu, "
            "\"risky\": %zu, \"errors\": %zu, \"violations\": %llu}, "
            "\"specplan\": {\"candidates\": %zu, \"proven\": %zu, "
            "\"likely\": %zu, \"errors\": %zu, "
            "\"provenMismatches\": %llu, "
            "\"likelyObservations\": %llu, \"likelyHits\": %llu, "
            "\"likelyHitRate\": %s}, "
            "\"run\": {\"ok\": %s, \"stopReason\": \"%s\", "
            "\"seqInsts\": %llu, \"baselineCycles\": %llu, "
            "\"msspCycles\": %llu, \"speedup\": %s, "
            "\"masterInsts\": %llu, "
            "\"distillRatio\": %s, \"meanTaskSize\": %s}, "
            "\"speculation\": {\"baked\": %zu, "
            "\"bakedProven\": %zu, \"iterations\": %zu, "
            "\"converged\": %s, \"despeculated\": %zu, "
            "\"lintErrors\": %zu, \"editMismatches\": %llu, "
            "\"run\": {\"ok\": %s, \"msspCycles\": %llu, "
            "\"speedup\": %s, \"masterInsts\": %llu}}, "
            "\"crossval\": {\"divergenceSquashes\": %llu, "
            "\"consistent\": %s}, \"ok\": %s}%s\n",
            w.name.c_str(), w.lintErrors, w.lintWarnings, w.edits,
            w.proven, w.risky, w.unknown, w.semanticErrors,
            w.specLoads, w.specProvablyInvariant,
            w.specRegionInvariant, w.specRisky, w.specErrors,
            static_cast<unsigned long long>(w.specViolations),
            w.planCandidates, w.planProven, w.planLikely,
            w.planErrors,
            static_cast<unsigned long long>(w.planProvenMismatches),
            static_cast<unsigned long long>(
                w.planLikelyObservations),
            static_cast<unsigned long long>(w.planLikelyHits),
            w.planLikelyObservations
                ? fmtG(static_cast<double>(w.planLikelyHits) /
                       static_cast<double>(w.planLikelyObservations))
                      .c_str()
                : "null",
            w.run.ok ? "true" : "false", toString(w.run.stopReason),
            static_cast<unsigned long long>(w.run.seqInsts),
            static_cast<unsigned long long>(w.run.baselineCycles),
            static_cast<unsigned long long>(w.run.msspCycles),
            fmtG(w.run.speedup).c_str(),
            static_cast<unsigned long long>(w.run.masterInsts),
            fmtG(w.run.distillRatio).c_str(),
            fmtG(w.run.meanTaskSize).c_str(),
            w.specBaked, w.specBakedProven, w.specAdaptIterations,
            w.specAdaptConverged ? "true" : "false",
            w.specDespeculated, w.specImageLintErrors,
            static_cast<unsigned long long>(w.specEditMismatches),
            w.specRun.ok ? "true" : "false",
            static_cast<unsigned long long>(w.specRun.msspCycles),
            fmtG(w.specRun.speedup).c_str(),
            static_cast<unsigned long long>(w.specRun.masterInsts),
            static_cast<unsigned long long>(w.divergenceSquashes),
            w.consistent ? "true" : "false",
            w.ok() ? "true" : "false",
            i + 1 < workloads.size() ? "," : "");
    }
    // Embed the campaign's own deterministic document as the value of
    // "campaign" (its trailing newline dropped).
    std::string camp = campaign.toJson();
    while (!camp.empty() && camp.back() == '\n')
        camp.pop_back();
    out += " ],\n \"evalQuarantine\": " + evalQuarantine.toJson() +
           ",\n";
    out += " \"campaign\": " + camp + ",\n";
    out += strfmt(" \"evalFailures\": %zu, \"quarantined\": %zu, "
                  "\"ok\": %s}\n",
                  evalFailures(), quarantinedTotal(),
                  ok() ? "true" : "false");
    return out;
}

std::string
SuiteReport::summary() const
{
    Table t({"workload", "lint", "sem-err", "proven/edits",
             "loads PI/RI/R", "spec", "plan P/L", "pv-miss", "l-hit",
             "run", "speedup", "baked P/T", "adapt", "spec-run",
             "div-squash", "consistent", "verdict"});
    for (const SuiteWorkloadResult &w : workloads) {
        std::string lhit = "-";
        if (w.planLikelyObservations) {
            lhit = strfmt(
                "%.0f%%",
                100.0 * static_cast<double>(w.planLikelyHits) /
                    static_cast<double>(w.planLikelyObservations));
        }
        t.addRow({w.name,
                  w.lintErrors ? strfmt("%zu ERR", w.lintErrors)
                               : "clean",
                  strfmt("%zu", w.semanticErrors),
                  strfmt("%zu/%zu", w.proven, w.edits),
                  strfmt("%zu/%zu/%zu", w.specProvablyInvariant,
                         w.specRegionInvariant, w.specRisky),
                  w.specErrors || w.specViolations
                      ? strfmt("%zu err %llu viol", w.specErrors,
                               static_cast<unsigned long long>(
                                   w.specViolations))
                      : "clean",
                  strfmt("%zu/%zu", w.planProven, w.planLikely),
                  strfmt("%llu", static_cast<unsigned long long>(
                                     w.planProvenMismatches)),
                  lhit,
                  w.run.ok ? "ok" : toString(w.run.stopReason),
                  fmt2(w.run.speedup),
                  strfmt("%zu/%zu", w.specBakedProven, w.specBaked),
                  w.specAdaptConverged
                      ? strfmt("conv@%zu", w.specAdaptIterations)
                      : "NOCONV",
                  w.specImageLintErrors || w.specEditMismatches
                      ? strfmt("%zu err %llu miss",
                               w.specImageLintErrors,
                               static_cast<unsigned long long>(
                                   w.specEditMismatches))
                      : (w.specRun.ok ? "ok"
                                      : toString(
                                            w.specRun.stopReason)),
                  strfmt("%llu", static_cast<unsigned long long>(
                                     w.divergenceSquashes)),
                  w.consistent ? "yes" : "NO",
                  w.ok() ? "ok" : "FAIL"});
    }
    std::string s =
        t.render("mssp-suite: distill + lint + semantic + specsafe "
                 "+ specplan + run + crossval");
    s += evalQuarantine.summary();
    s += "\n";
    s += campaign.summary();
    s += strfmt("\nsuite: %zu eval failure(s), %zu campaign "
                "failure(s), %zu quarantined -> %s\n",
                evalFailures(), campaign.failures(),
                quarantinedTotal(), ok() ? "OK" : "FAIL");
    return s;
}

SuiteReport
runSuite(const SuiteOptions &opts, std::ostream *log)
{
    SuiteReport report;
    report.options = opts;
    if (report.options.workloads.empty()) {
        for (const Workload &wl : specAnalogues(opts.scale))
            report.options.workloads.push_back(wl.name);
    }
    const std::vector<std::string> &names = report.options.workloads;
    unsigned jobs = opts.jobs ? opts.jobs : 1;

    // Phase one: one job per workload runs the evaluation chain and
    // seeds the campaign's oracle cache from the prepared pipeline.
    SeqOracleCache oracles(opts.scale);
    Mutex log_m;
    std::vector<std::function<SuiteWorkloadResult(const JobContext &)>>
        work;
    work.reserve(names.size());
    for (const std::string &name : names) {
        work.push_back([&opts, &oracles, &log_m, log,
                        &name](const JobContext &) {
            SuiteWorkloadResult r;
            r.name = name;

            Workload wl = workloadByName(name, opts.scale);
            PreparedWorkload prepared =
                prepare(wl.refSource, wl.trainSource,
                        DistillerOptions::paperPreset());

            analysis::LintReport lint =
                analysis::verifyDistilled(prepared.orig,
                                          prepared.dist);
            r.lintErrors = lint.errors();
            r.lintWarnings = lint.warnings();

            analysis::SemanticResult sem =
                analysis::verifyDistilledSemantic(prepared.orig,
                                                  prepared.dist);
            r.edits = sem.semantic.verdicts.size();
            r.proven = sem.semantic.proven();
            r.risky = sem.semantic.risky();
            r.unknown = sem.semantic.unknown();
            r.semanticErrors = sem.lint.errors();

            analysis::SpecSafeReport spec =
                analysis::analyzeSpecSafe(prepared.orig,
                                          prepared.dist);
            r.specLoads = spec.loads.size();
            r.specProvablyInvariant = spec.provablyInvariant();
            r.specRegionInvariant = spec.regionInvariant();
            r.specRisky = spec.risky();
            r.specErrors = spec.lint.errors();
            r.specViolations =
                validateSpecSafeDynamic(prepared.orig, prepared.dist,
                                        spec.loads)
                    .valueChanges;

            analysis::SpecPlanReport plan =
                analysis::analyzeSpecPlan(prepared.orig,
                                          prepared.dist);
            r.planCandidates = plan.candidates.size();
            r.planProven = plan.proven();
            r.planLikely = plan.likely();
            r.planErrors = plan.lint.errors();
            SpecPlanDynamicResult pdyn = validateSpecPlanDynamic(
                prepared.orig, prepared.dist, plan.candidates);
            r.planProvenMismatches = pdyn.provenMismatches;
            r.planLikelyObservations = pdyn.likelyObservations;
            r.planLikelyHits = pdyn.likelyHits;

            r.run = runPrepared(name, prepared, MsspConfig{},
                                opts.runMaxCycles);

            // Speculation stage: adapt a value-speculated image off
            // the same profile, gate it statically (all validators on
            // the speculated image), dynamically (baked constants vs
            // the SEQ replay of the original), and architecturally
            // (full machine run vs the same baseline).
            AdaptOptions aopts;
            aopts.runMaxCycles = opts.runMaxCycles;
            AdaptResult adapted = adaptSpeculation(
                prepared.orig, prepared.profile,
                DistillerOptions::paperPreset(), aopts);
            r.specBaked = adapted.dist.specEdits.size();
            for (const SpecEdit &e : adapted.dist.specEdits)
                r.specBakedProven +=
                    e.proof == ValueProof::Proven ? 1 : 0;
            r.specAdaptIterations = adapted.iterations.size();
            r.specAdaptConverged = adapted.converged;
            r.specDespeculated = adapted.despeculated.size();
            r.specImageLintErrors =
                analysis::verifyDistilled(prepared.orig, adapted.dist)
                    .errors() +
                analysis::verifyDistilledSemantic(prepared.orig,
                                                  adapted.dist)
                    .lint.errors() +
                analysis::analyzeSpecSafe(prepared.orig, adapted.dist)
                    .lint.errors() +
                analysis::analyzeSpecPlan(prepared.orig, adapted.dist)
                    .lint.errors();
            r.specEditMismatches =
                validateSpecEditsDynamic(prepared.orig, adapted.dist)
                    .provenMismatches;
            PreparedWorkload spec_prepared{prepared.orig,
                                           prepared.profile,
                                           std::move(adapted.dist)};
            r.specRun = runPrepared(name, spec_prepared, MsspConfig{},
                                    opts.runMaxCycles);

            r.divergenceSquashes =
                r.run.counters.tasksSquashedLiveIn +
                r.run.counters.tasksSquashedWrongPc;
            bool all_proven = r.proven == r.edits;
            r.consistent = r.run.ok &&
                           (!all_proven || r.divergenceSquashes == 0);

            oracles.put(name, std::move(prepared));
            if (log) {
                MutexLock lock(log_m);
                *log << strfmt("  [eval] %-10s %s\n", r.name.c_str(),
                               r.ok() ? "ok" : "FAIL");
                log->flush();
            }
            return r;
        });
    }
    SupervisorOptions sopts;
    sopts.retry = opts.retry;
    sopts.budget = opts.jobBudget;
    sopts.seed = opts.seed;
    HostChaos chaos(opts.chaos);
    if (opts.chaos.enabled())
        sopts.chaos = &chaos;
    SupervisedResult<SuiteWorkloadResult> phase1 =
        runSupervised<SuiteWorkloadResult>(jobs, std::move(work),
                                           sopts, names);
    report.workloads.reserve(phase1.outcomes.size());
    for (JobOutcome<SuiteWorkloadResult> &out : phase1.outcomes) {
        if (out.ok())
            report.workloads.push_back(std::move(*out.value));
    }
    report.evalQuarantine = std::move(phase1.quarantine);
    if (log && !report.evalQuarantine.empty()) {
        *log << report.evalQuarantine.summary();
        log->flush();
    }

    // Phase two: the fault-campaign cell sweep over the same pool,
    // reusing phase one's oracles (no workload is prepared twice). A
    // quarantined workload's oracle was never seeded; the campaign's
    // unsupervised warm phase recomputes it deterministically.
    CampaignOptions copts;
    copts.workloads = names;
    copts.intensities = opts.intensities;
    copts.scale = opts.scale;
    copts.seed = opts.seed;
    copts.maxCycles = opts.campaignMaxCycles;
    copts.jobs = jobs;
    copts.retry = opts.retry;
    copts.cellBudget = opts.jobBudget;
    copts.chaos = opts.chaos;
    report.campaign = runFaultCampaign(copts, log, &oracles);
    return report;
}

} // namespace mssp

/**
 * @file
 * Static-risk vs. dynamic-misspeculation cross-validation.
 *
 * The semantic translation validator (analysis/verifier.hh) makes a
 * falsifiable claim per workload: if *every* distiller edit is
 * Proven, no task may ever squash on live-in divergence or a wrong
 * predicted PC. This harness runs each registry workload through the
 * full MSSP machine and correlates the static risk classes with the
 * dynamic divergence-squash counters — a Proven-only workload with
 * divergence squashes falsifies the abstract interpreter (that is
 * the cross-validation gate in tests/test_crossval.cpp).
 */

#ifndef MSSP_EVAL_CROSSVAL_HH
#define MSSP_EVAL_CROSSVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mssp/config.hh"

namespace mssp
{

/** One workload's static risk profile vs. dynamic behaviour. */
struct CrossValRow
{
    std::string name;
    bool ok = false;            ///< run halted + output-equivalent

    size_t edits = 0;
    size_t proven = 0;
    size_t risky = 0;
    size_t unknown = 0;
    size_t semanticErrors = 0;  ///< error-severity semantic findings

    /** Squashes attributable to distillation divergence (live-in
     *  mismatch + wrong fork PC), not capacity effects. */
    uint64_t divergenceSquashes = 0;

    /** The falsifiable claim: all-proven implies zero divergence
     *  squashes. (Risky/unknown edits do not *require* squashes —
     *  static analysis over-approximates.) */
    bool consistent = false;
};

/** Cross-validation over a workload set. */
struct CrossValReport
{
    std::vector<CrossValRow> rows;

    bool allConsistent() const;

    /** Aligned table, one row per workload. */
    std::string toText() const;
};

/**
 * Run the cross-validation over all registry workloads at @p scale
 * (1.0 = paper-size inputs), using the paper-preset distiller.
 * Workloads shard across @p jobs host threads (sim/parallel.hh);
 * rows always come back in registry order, so the report is
 * identical for any job count.
 */
CrossValReport crossValidate(double scale, const MsspConfig &cfg,
                             uint64_t max_cycles = 400000000ull,
                             unsigned jobs = 1);

} // namespace mssp

#endif // MSSP_EVAL_CROSSVAL_HH

/**
 * @file
 * Static-risk vs. dynamic-misspeculation cross-validation.
 *
 * The semantic translation validator (analysis/verifier.hh) makes a
 * falsifiable claim per workload: if *every* distiller edit is
 * Proven, no task may ever squash on live-in divergence or a wrong
 * predicted PC. This harness runs each registry workload through the
 * full MSSP machine and correlates the static risk classes with the
 * dynamic divergence-squash counters — a Proven-only workload with
 * divergence squashes falsifies the abstract interpreter (that is
 * the cross-validation gate in tests/test_crossval.cpp).
 *
 * The speculation-safety classifier (analysis/specsafe.hh) makes a
 * second falsifiable claim: a load classified ProvablyInvariant must
 * never observe a changed value at runtime. validateSpecSafeDynamic()
 * replays the merged image on SEQ, tracks every ProvablyInvariant
 * load's value per static PC, and counts changes — any nonzero count
 * falsifies the alias analysis and fails the gate outright.
 *
 * The speculation planner (analysis/specplan.hh) makes a third,
 * sharper claim: a Proven plan candidate predicts the exact value a
 * load reads, every time. validateSpecPlanDynamic() replays the
 * merged image on SEQ and compares every tracked load's observed
 * value against the plan's prediction — a single Proven mismatch
 * falsifies the value-flow analysis and fails the gate; Likely
 * candidates only accumulate an observed hit rate.
 */

#ifndef MSSP_EVAL_CROSSVAL_HH
#define MSSP_EVAL_CROSSVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/specplan.hh"
#include "analysis/specsafe.hh"
#include "mssp/config.hh"

namespace mssp
{

/** One workload's static risk profile vs. dynamic behaviour. */
struct CrossValRow
{
    std::string name;
    bool ok = false;            ///< run halted + output-equivalent

    size_t edits = 0;
    size_t proven = 0;
    size_t risky = 0;
    size_t unknown = 0;
    size_t semanticErrors = 0;  ///< error-severity semantic findings

    /** Squashes attributable to distillation divergence (live-in
     *  mismatch + wrong fork PC), not capacity effects. */
    uint64_t divergenceSquashes = 0;

    // Speculation-safety load classification (analysis/specsafe.hh)
    size_t specLoads = 0;
    size_t specProvablyInvariant = 0;
    size_t specRegionInvariant = 0;
    size_t specRisky = 0;
    size_t specErrors = 0;  ///< metadata-validation findings (errors)
    /** Dynamic value changes observed at ProvablyInvariant loads.
     *  Any nonzero count falsifies the alias analysis. */
    uint64_t provInvariantValueChanges = 0;

    // Speculation-plan value prediction (analysis/specplan.hh)
    size_t planCandidates = 0;
    size_t planProven = 0;
    size_t planLikely = 0;
    size_t planErrors = 0;  ///< plan-metadata findings (errors)
    /** Observed values at Proven candidates that differed from the
     *  prediction. Any nonzero count falsifies the value-flow
     *  analysis. */
    uint64_t planProvenMismatches = 0;
    uint64_t planLikelyObservations = 0;
    uint64_t planLikelyHits = 0;  ///< observed == predicted

    /** The falsifiable claims: all-proven implies zero divergence
     *  squashes, ProvablyInvariant loads never change value, and
     *  Proven plan candidates always read the predicted value.
     *  (Risky/unknown edits do not *require* squashes — static
     *  analysis over-approximates; Likely candidates may miss.) */
    bool consistent = false;
};

/** What validateSpecSafeDynamic() observed. */
struct SpecSafeDynamicResult
{
    size_t checkedLoads = 0;    ///< ProvablyInvariant static loads
    uint64_t observations = 0;  ///< dynamic executions of those loads
    uint64_t valueChanges = 0;  ///< value differed from last time
    std::string firstViolation; ///< detail of the first change
};

/**
 * Replay the merged image (original overlaid with the distilled
 * code, entry at the distilled entry) on the SEQ reference machine
 * for at most @p max_insts instructions and track the value every
 * ProvablyInvariant load in @p loads reads, per static PC. A change
 * between two dynamic executions of the same static load is a
 * counterexample to the classifier's invariance proof.
 */
SpecSafeDynamicResult validateSpecSafeDynamic(
    const Program &orig, const DistilledProgram &dist,
    const std::vector<analysis::LoadClassification> &loads,
    uint64_t max_insts = 20000000ull);

/** One plan candidate's dynamic record. */
struct SpecPlanCandidateDyn
{
    uint32_t pc = 0;
    ValueProof proof = ValueProof::Proven;
    uint32_t predicted = 0;
    uint64_t observations = 0;
    uint64_t hits = 0;          ///< observed value == predicted
};

/** What validateSpecPlanDynamic() observed. */
struct SpecPlanDynamicResult
{
    std::vector<SpecPlanCandidateDyn> candidates; ///< plan order
    uint64_t provenMismatches = 0;  ///< misses at Proven candidates
    uint64_t likelyObservations = 0;
    uint64_t likelyHits = 0;
    std::string firstViolation; ///< first Proven mismatch, if any
};

/**
 * Replay the merged image on the SEQ reference machine for at most
 * @p max_insts instructions and compare the value every plan
 * candidate's load reads against its predicted value. A Proven
 * candidate observing a different value is a counterexample to the
 * value-flow analysis; Likely candidates merely accumulate their
 * observed hit rate.
 */
SpecPlanDynamicResult validateSpecPlanDynamic(
    const Program &orig, const DistilledProgram &dist,
    const std::vector<analysis::SpecPlanCandidate> &candidates,
    uint64_t max_insts = 20000000ull);

/** What validateSpecEditsDynamic() observed. */
struct SpecEditDynamicResult
{
    size_t checkedEdits = 0;        ///< specedit records tracked
    uint64_t observations = 0;      ///< dynamic executions of those loads
    uint64_t provenMismatches = 0;  ///< misses at Proven edits
    uint64_t likelyObservations = 0;
    uint64_t likelyHits = 0;
    std::string firstViolation;     ///< first Proven mismatch, if any
};

/**
 * Replay the *original* program on the SEQ reference machine for at
 * most @p max_insts instructions and compare the value each baked
 * load (dist.specEdits, .mdo v5) actually reads against the constant
 * the speculated image carries. This is the runtime half of the
 * tamper gate: a Proven edit whose original load ever reads a
 * different value — because the record was corrupted or the analysis
 * was wrong — is a hard failure; Likely edits accumulate a hit rate.
 */
SpecEditDynamicResult validateSpecEditsDynamic(
    const Program &orig, const DistilledProgram &dist,
    uint64_t max_insts = 20000000ull);

/** Cross-validation over a workload set. */
struct CrossValReport
{
    std::vector<CrossValRow> rows;

    bool allConsistent() const;

    /** Aligned table, one row per workload. */
    std::string toText() const;
};

/**
 * Run the cross-validation over all registry workloads at @p scale
 * (1.0 = paper-size inputs), using the paper-preset distiller.
 * Workloads shard across @p jobs host threads (sim/parallel.hh);
 * rows always come back in registry order, so the report is
 * identical for any job count.
 */
CrossValReport crossValidate(double scale, const MsspConfig &cfg,
                             uint64_t max_cycles = 400000000ull,
                             unsigned jobs = 1);

} // namespace mssp

#endif // MSSP_EVAL_CROSSVAL_HH

#include "eval/experiment.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>

#include "asm/assembler.hh"
#include "exec/seq_machine.hh"
#include "mssp/baseline.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "util/string_utils.hh"

namespace mssp
{

WorkloadRun
runPrepared(const std::string &name, const PreparedWorkload &prepared,
            const MsspConfig &cfg, uint64_t max_cycles)
{
    WorkloadRun run;
    run.name = name;
    run.report = prepared.dist.report;

    BaselineResult base = runBaseline(prepared.orig, cfg.slaveIpc,
                                      1000000000ull);
    run.seqInsts = base.insts;
    run.baselineCycles = base.cycles;

    MsspMachine machine(prepared.orig, prepared.dist, cfg);
    MsspResult mssp = machine.run(max_cycles);

    run.msspCycles = mssp.cycles;
    run.stopReason = mssp.stopReason;
    run.counters = machine.counters();
    run.masterInsts = machine.counters().masterInsts;
    run.meanTaskSize = machine.meanTaskSize();
    run.distillRatio =
        run.seqInsts ? static_cast<double>(run.masterInsts) /
                           static_cast<double>(run.seqInsts)
                     : 0.0;
    run.speedup =
        mssp.cycles ? static_cast<double>(run.baselineCycles) /
                          static_cast<double>(mssp.cycles)
                    : 0.0;

    run.ok = base.halted && mssp.halted &&
             mssp.outputs == base.outputs &&
             mssp.committedInsts == base.insts;
    if (!run.ok) {
        warn("workload %s: MSSP run not equivalent (%s)",
             name.c_str(), toString(mssp.stopReason));
    }
    return run;
}

WorkloadRun
runWorkload(const Workload &wl, const MsspConfig &cfg,
            const DistillerOptions &dopts, uint64_t max_cycles)
{
    PreparedWorkload prepared = prepare(wl.refSource, wl.trainSource,
                                        dopts);
    return runPrepared(wl.name, prepared, cfg, max_cycles);
}

unsigned
benchJobs(int argc, char **argv, const char *tool)
{
    unsigned jobs = defaultJobs();
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = static_cast<unsigned>(
                std::max(1, std::atoi(argv[++i])));
        } else {
            std::fprintf(stderr, "usage: %s [--jobs N]\n", tool);
            std::exit(2);
        }
    }
    return jobs;
}

std::vector<PreparedWorkload>
prepareAll(const std::vector<Workload> &workloads,
           const DistillerOptions &dopts, unsigned jobs)
{
    std::vector<std::function<PreparedWorkload()>> work;
    work.reserve(workloads.size());
    for (const Workload &wl : workloads) {
        work.push_back([&wl, &dopts] {
            return prepare(wl.refSource, wl.trainSource, dopts);
        });
    }
    return runSharded<PreparedWorkload>(jobs, std::move(work));
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{}

void
Table::addRow(std::vector<std::string> cells)
{
    MSSP_ASSERT(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::render(const std::string &title) const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    std::string out;
    out += "== " + title + " ==\n";
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            out += (c == 0 ? padRight(cells[c], width[c] + 2)
                           : padLeft(cells[c], width[c]) + "  ");
        }
        out += '\n';
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + 2;
    out += std::string(total, '-') + '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return out;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v > 0 ? v : 1e-9);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string
fmt2(double v)
{
    return strfmt("%.2f", v);
}

std::string
fmtPct(double v)
{
    return strfmt("%.2f%%", 100.0 * v);
}

} // namespace mssp

/**
 * @file
 * A minimal discrete-event scheduling kernel.
 *
 * The MSSP machine is cycle-stepped for its cores, but inter-component
 * messages (task spawn delivery, commit completion, squash/restart
 * signals) are carried by events with latencies. The queue is strictly
 * deterministic: events at the same cycle fire in insertion order.
 */

#ifndef MSSP_SIM_EVENT_QUEUE_HH
#define MSSP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace mssp
{

/** Simulation time in cycles. */
using Cycle = uint64_t;

/** Deterministic time-ordered event queue. */
class EventQueue
{
  public:
    using Action = std::function<void()>;

    /** Schedule @p action to run at absolute cycle @p when. */
    void
    schedule(Cycle when, Action action)
    {
        events[when].push_back(std::move(action));
        ++pending_;
    }

    /** Schedule @p action @p delay cycles after @p now. */
    void
    scheduleIn(Cycle now, Cycle delay, Action action)
    {
        schedule(now + delay, std::move(action));
    }

    /**
     * Run every event scheduled at or before @p now.
     * Events may schedule further events; those at or before @p now
     * also run during this call.
     */
    void
    runUntil(Cycle now)
    {
        while (!events.empty() && events.begin()->first <= now) {
            auto it = events.begin();
            // Move out so handlers can schedule at the same cycle.
            std::vector<Action> batch = std::move(it->second);
            Cycle when = it->first;
            events.erase(it);
            pending_ -= batch.size();
            for (auto &a : batch)
                a();
            // Handlers may have scheduled new work at 'when'; the loop
            // re-checks the front of the map, so it is picked up.
            (void)when;
        }
    }

    /** Discard all pending events (used on machine reset). */
    void
    clear()
    {
        events.clear();
        pending_ = 0;
    }

    /** Number of not-yet-fired events. */
    size_t pending() const { return pending_; }

    /** @return true when nothing is scheduled. */
    bool empty() const { return events.empty(); }

    /** Cycle of the earliest pending event (queue must be nonempty). */
    Cycle nextEventCycle() const { return events.begin()->first; }

  private:
    std::map<Cycle, std::vector<Action>> events;
    size_t pending_ = 0;
};

} // namespace mssp

#endif // MSSP_SIM_EVENT_QUEUE_HH

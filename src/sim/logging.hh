/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic() is for internal simulator bugs (conditions that should never
 * happen regardless of user input); it aborts. fatal() is for user
 * errors (bad configuration, malformed assembly); it throws a
 * FatalError so library embedders and tests can catch it. warn() and
 * inform() print status without stopping the simulation.
 */

#ifndef MSSP_SIM_LOGGING_HH
#define MSSP_SIM_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace mssp
{

/** Exception thrown by fatal(): the user asked for something invalid. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** printf-style formatting from a va_list. */
std::string vstrfmt(const char *fmt, va_list ap);

/** Report an internal invariant violation and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a user-caused error by throwing FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (benches use this). */
void setQuiet(bool quiet);

/** @return true when warn()/inform() are silenced. */
bool quiet();

} // namespace mssp

/** assert-like macro that survives NDEBUG and reports via panic(). */
#define MSSP_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::mssp::panic("assertion '%s' failed at %s:%d", #cond,      \
                          __FILE__, __LINE__);                          \
        }                                                               \
    } while (0)

#endif // MSSP_SIM_LOGGING_HH

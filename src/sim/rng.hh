/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * All stochastic behaviour in the simulator (workload data generation,
 * fault injection, adversarial corruption) flows through this RNG so
 * that every run is exactly reproducible from a seed.
 */

#ifndef MSSP_SIM_RNG_HH
#define MSSP_SIM_RNG_HH

#include <cstdint>

namespace mssp
{

/** xoshiro-style splitmix64 generator; small, fast, deterministic. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound) (bound must be nonzero). */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    chance(double p)
    {
        return static_cast<double>(next() >> 11) *
               (1.0 / 9007199254740992.0) < p;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) *
               (1.0 / 9007199254740992.0);
    }

    /**
     * Deterministically derive a sub-seed from a parent seed and a
     * stream index (splitmix finalizer). Fault campaigns use this to
     * give every (workload, fault, rate) run an independent,
     * reproducible stream from one campaign seed.
     */
    static uint64_t
    mix(uint64_t seed, uint64_t stream)
    {
        uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

  private:
    uint64_t state;
};

} // namespace mssp

#endif // MSSP_SIM_RNG_HH

#include "sim/parallel.hh"

#include "sim/logging.hh"

namespace mssp
{

unsigned
defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    shards_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        shards_.push_back(std::make_unique<Shard>());
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerMain(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::run(std::vector<std::function<void()>> jobs)
{
    if (jobs.empty())
        return;

    std::vector<std::exception_ptr> errors(jobs.size());
    {
        std::lock_guard<std::mutex> lock(m_);
        // Publish the batch state *before* dealing indices: a worker
        // still draining the previous batch may pop a new index the
        // moment it hits a shard queue, and the shard mutex only
        // orders it after the push below.
        jobs_ = &jobs;
        errors_ = &errors;
        remaining_.store(jobs.size(), std::memory_order_release);
        ++batch_;
        // Deal indices round-robin: similar-cost neighbours spread
        // over all workers, stealing rebalances the rest.
        for (size_t i = 0; i < jobs.size(); ++i) {
            Shard &s = *shards_[i % shards_.size()];
            std::lock_guard<std::mutex> qlock(s.m);
            s.q.push_back(i);
        }
    }
    wake_.notify_all();

    {
        std::unique_lock<std::mutex> lock(m_);
        done_.wait(lock, [this] {
            return remaining_.load(std::memory_order_acquire) == 0;
        });
        jobs_ = nullptr;
        errors_ = nullptr;
    }

    // First failure by job index, not completion time: deterministic.
    for (std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

bool
ThreadPool::nextJob(unsigned self, size_t &idx)
{
    {
        Shard &own = *shards_[self];
        std::lock_guard<std::mutex> lock(own.m);
        if (!own.q.empty()) {
            idx = own.q.back();   // LIFO: most recently dealt, warm
            own.q.pop_back();
            return true;
        }
    }
    for (size_t off = 1; off < shards_.size(); ++off) {
        Shard &victim = *shards_[(self + off) % shards_.size()];
        std::lock_guard<std::mutex> lock(victim.m);
        if (!victim.q.empty()) {
            idx = victim.q.front();   // steal oldest: FIFO fairness
            victim.q.pop_front();
            return true;
        }
    }
    return false;
}

void
ThreadPool::execute(size_t idx)
{
    try {
        (*jobs_)[idx]();
    } catch (...) {
        (*errors_)[idx] = std::current_exception();
    }
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last job out: wake the caller. Taking the lock orders this
        // notify after the caller's wait() registration.
        std::lock_guard<std::mutex> lock(m_);
        done_.notify_all();
    }
}

void
ThreadPool::workerMain(unsigned self)
{
    uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(m_);
            wake_.wait(lock,
                       [this, seen] { return stop_ || batch_ != seen; });
            if (stop_)
                return;
            seen = batch_;
        }
        size_t idx;
        while (nextJob(self, idx))
            execute(idx);
        // Batch drained (for this worker). Other workers may still be
        // executing; run() waits on remaining_, not on us.
    }
}

} // namespace mssp

#include "sim/parallel.hh"

#include "sim/logging.hh"

namespace mssp
{

unsigned
defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    shards_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        shards_.push_back(std::make_unique<Shard>());
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerMain(i); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(m_);
        stop_ = true;
    }
    wake_.notifyAll();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::run(std::vector<std::function<void()>> jobs)
{
    std::vector<std::exception_ptr> errors =
        runCollect(std::move(jobs));
    // First failure by job index, not completion time: deterministic.
    // The rest are dropped — the compat contract (see the header).
    for (std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

std::vector<std::exception_ptr>
ThreadPool::runCollect(std::vector<std::function<void()>> jobs)
{
    std::vector<std::exception_ptr> errors(jobs.size());
    if (jobs.empty())
        return errors;
    {
        MutexLock lock(m_);
        // Publish the batch state *before* dealing indices: a worker
        // still draining the previous batch may pop a new index the
        // moment it hits a shard queue, and the shard mutex only
        // orders it after the push below.
        jobs_ = &jobs;
        errors_ = &errors;
        remaining_.store(jobs.size(), std::memory_order_release);
        ++batch_;
        // Deal indices round-robin: similar-cost neighbours spread
        // over all workers, stealing rebalances the rest.
        for (size_t i = 0; i < jobs.size(); ++i) {
            Shard &s = *shards_[i % shards_.size()];
            MutexLock qlock(s.m);
            s.q.push_back(i);
        }
    }
    wake_.notifyAll();

    {
        MutexLock lock(m_);
        while (remaining_.load(std::memory_order_acquire) != 0)
            done_.wait(m_);
        jobs_ = nullptr;
        errors_ = nullptr;
    }
    return errors;
}

bool
ThreadPool::nextJob(unsigned self, size_t &idx)
{
    {
        Shard &own = *shards_[self];
        MutexLock lock(own.m);
        if (!own.q.empty()) {
            idx = own.q.back();   // LIFO: most recently dealt, warm
            own.q.pop_back();
            return true;
        }
    }
    for (size_t off = 1; off < shards_.size(); ++off) {
        Shard &victim = *shards_[(self + off) % shards_.size()];
        MutexLock lock(victim.m);
        if (!victim.q.empty()) {
            idx = victim.q.front();   // steal oldest: FIFO fairness
            victim.q.pop_front();
            return true;
        }
    }
    return false;
}

void
ThreadPool::execute(size_t idx,
                    std::vector<std::function<void()>> &jobs,
                    std::vector<std::exception_ptr> &errors)
{
    try {
        jobs[idx]();
    } catch (...) {
        errors[idx] = std::current_exception();
    }
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last job out: wake the caller. Taking the lock orders this
        // notify after the caller's wait() registration.
        MutexLock lock(m_);
        done_.notifyAll();
    }
}

void
ThreadPool::workerMain(unsigned self)
{
    uint64_t seen = 0;
    for (;;) {
        std::vector<std::function<void()>> *jobs = nullptr;
        std::vector<std::exception_ptr> *errors = nullptr;
        {
            MutexLock lock(m_);
            while (!stop_ && batch_ == seen)
                wake_.wait(m_);
            if (stop_)
                return;
            seen = batch_;
            // Snapshot the batch arrays under the lock; run() only
            // clears them after remaining_ hits zero, so they outlive
            // every execute() of this batch.
            jobs = jobs_;
            errors = errors_;
        }
        size_t idx;
        while (nextJob(self, idx))
            execute(idx, *jobs, *errors);
        // Batch drained (for this worker). Other workers may still be
        // executing; run() waits on remaining_, not on us.
    }
}

} // namespace mssp

/**
 * @file
 * Structured status / result taxonomy for the job runtime.
 *
 * Every way a supervised job can end — success, cooperative
 * cancellation, a budget trip, malformed input, an ordinary failure —
 * is one StatusCode, so sweep drivers and servers can branch on the
 * class of an outcome instead of string-matching exception text, and
 * quarantine reports stay byte-deterministic (codes render as fixed
 * kebab-case names).
 *
 * Three pieces:
 *
 *  - Status: a code plus a human-readable message. Messages must be
 *    deterministic for deterministic inputs (no pointers, times or
 *    host state) because they are embedded verbatim in the JSON
 *    quarantine reports that CI byte-diffs.
 *  - Result<T>: a value or the Status explaining its absence, for
 *    parse-style APIs (asm/objfile.hh) where failure is an expected
 *    outcome, not an exception.
 *  - StatusError: the exception form, derived from FatalError so
 *    every existing catch (const FatalError &) boundary — the CLI
 *    tools, the ThreadPool — already contains it. Machines throw it
 *    at supervision trip points (sim/supervisor.hh).
 */

#ifndef MSSP_SIM_STATUS_HH
#define MSSP_SIM_STATUS_HH

#include <optional>
#include <string>
#include <utility>

#include "sim/logging.hh"

namespace mssp
{

/** The class of a job outcome. */
enum class StatusCode : uint8_t
{
    Ok = 0,
    Cancelled,            ///< CancelToken observed at a safe point
    DeadlineExceeded,     ///< wall-clock budget ran out
    InstLimitExceeded,    ///< executed-instruction budget ran out
    CommitLimitExceeded,  ///< retired-work budget ran out
    ParseError,           ///< malformed untrusted input
    JobFailed,            ///< the job threw an ordinary error
    Internal,             ///< should-not-happen wrapped as data
};

/** Fixed kebab-case name ("ok", "deadline-exceeded", ...). */
const char *toString(StatusCode code);

/** @return true for the budget-trip codes (exit code 4 at the CLIs:
 *  deadline, instruction cap, retired-work cap). */
inline bool
isBudgetTrip(StatusCode code)
{
    return code == StatusCode::DeadlineExceeded ||
           code == StatusCode::InstLimitExceeded ||
           code == StatusCode::CommitLimitExceeded;
}

/** A status code plus a deterministic human-readable message. */
class Status
{
  public:
    /** Default: Ok with no message. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "code" or "code: message". */
    std::string
    toString() const
    {
        std::string s = mssp::toString(code_);
        if (!message_.empty()) {
            s += ": ";
            s += message_;
        }
        return s;
    }

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/**
 * A T or the Status explaining why there is none. Deliberately tiny:
 * just enough for the parse paths; not a monad library.
 */
template <typename T>
class Result
{
  public:
    Result(T value)                           // NOLINT(google-explicit-constructor)
        : value_(std::move(value))
    {}

    Result(Status status)                     // NOLINT(google-explicit-constructor)
        : status_(std::move(status))
    {
        MSSP_ASSERT(!status_.ok());   // an Ok Result must carry a value
    }

    bool ok() const { return value_.has_value(); }
    const Status &status() const { return status_; }

    T &
    value()
    {
        MSSP_ASSERT(value_.has_value());
        return *value_;
    }

    const T &
    value() const
    {
        MSSP_ASSERT(value_.has_value());
        return *value_;
    }

  private:
    Status status_;
    std::optional<T> value_;
};

/**
 * The exception form of a Status. Thrown by machines at supervision
 * trip points (always at an architecturally consistent boundary, so
 * the machine remains inspectable and resumable) and by the host
 * chaos layer. Derives from FatalError so every existing tool-level
 * and pool-level catch already handles it; runSupervised() catches it
 * first to preserve the structured code.
 */
class StatusError : public FatalError
{
  public:
    explicit StatusError(Status status)
        : FatalError(status.toString()), status_(std::move(status))
    {}

    const Status &status() const { return status_; }

  private:
    Status status_;
};

inline const char *
toString(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:                  return "ok";
      case StatusCode::Cancelled:           return "cancelled";
      case StatusCode::DeadlineExceeded:    return "deadline-exceeded";
      case StatusCode::InstLimitExceeded:   return "inst-limit-exceeded";
      case StatusCode::CommitLimitExceeded: return "commit-limit-exceeded";
      case StatusCode::ParseError:          return "parse-error";
      case StatusCode::JobFailed:           return "job-failed";
      case StatusCode::Internal:            return "internal";
    }
    return "internal";
}

} // namespace mssp

#endif // MSSP_SIM_STATUS_HH

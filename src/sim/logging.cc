#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace mssp
{

namespace
{
bool quietFlag = false;
} // anonymous namespace

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

} // namespace mssp

/**
 * @file
 * Clang -Wthread-safety annotations and annotated locking wrappers.
 *
 * A second, host-level static-analysis layer over the parallel sweep
 * infrastructure (DESIGN.md §10): the work-stealing pool and the
 * oracle cache declare which mutex guards which member, and clang's
 * thread-safety analysis proves every access happens under the right
 * lock at compile time. Under GCC the macros expand to nothing, so
 * the build is identical; under clang CMake promotes the warnings to
 * errors (see the -Wthread-safety block in CMakeLists.txt).
 *
 * libstdc++'s std::mutex is not capability-annotated, so annotating
 * raw std::mutex members trips -Wthread-safety-attributes. The
 * wrappers below carry the annotations themselves:
 *
 *  - Mutex: std::mutex with the "mutex" capability.
 *  - MutexLock: scoped lock_guard equivalent (SCOPED_CAPABILITY).
 *  - CondVar: condition variable waiting on a Mutex. Predicate
 *    lambdas are opaque to the analysis, so waits are written as
 *    explicit `while (!cond) cv.wait(m);` loops under the lock.
 */

#ifndef MSSP_SIM_THREAD_ANNOTATIONS_HH
#define MSSP_SIM_THREAD_ANNOTATIONS_HH

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define MSSP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MSSP_THREAD_ANNOTATION(x)
#endif

#define MSSP_CAPABILITY(x) MSSP_THREAD_ANNOTATION(capability(x))
#define MSSP_SCOPED_CAPABILITY MSSP_THREAD_ANNOTATION(scoped_lockable)
#define MSSP_GUARDED_BY(x) MSSP_THREAD_ANNOTATION(guarded_by(x))
#define MSSP_PT_GUARDED_BY(x) MSSP_THREAD_ANNOTATION(pt_guarded_by(x))
#define MSSP_REQUIRES(...) \
    MSSP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MSSP_ACQUIRE(...) \
    MSSP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MSSP_RELEASE(...) \
    MSSP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MSSP_EXCLUDES(...) \
    MSSP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define MSSP_NO_THREAD_SAFETY_ANALYSIS \
    MSSP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace mssp
{

/** std::mutex with the thread-safety "mutex" capability. */
class MSSP_CAPABILITY("mutex") Mutex
{
  public:
    void lock() MSSP_ACQUIRE() { m_.lock(); }
    void unlock() MSSP_RELEASE() { m_.unlock(); }

  private:
    friend class CondVar;
    std::mutex m_;
};

/** Scoped lock over a Mutex (lock_guard with annotations). */
class MSSP_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) MSSP_ACQUIRE(m) : m_(m)
    {
        m_.lock();
    }
    ~MutexLock() MSSP_RELEASE() { m_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &m_;
};

/** Condition variable waiting on an annotated Mutex. */
class CondVar
{
  public:
    /** Atomically release @p m, wait, and reacquire. The caller owns
     *  the predicate loop: `while (!cond) cv.wait(m);`. */
    void
    wait(Mutex &m) MSSP_REQUIRES(m)
    {
        // Adopt the already-held lock for the wait protocol, then
        // release ownership back to the caller without unlocking.
        std::unique_lock<std::mutex> lock(m.m_, std::adopt_lock);
        cv_.wait(lock);
        lock.release();
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace mssp

#endif // MSSP_SIM_THREAD_ANNOTATIONS_HH

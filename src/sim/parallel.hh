/**
 * @file
 * Host-parallel execution of independent simulation jobs.
 *
 * Every sweep driver in the repo — the fault campaigns, the
 * cross-validation harness, the fig_* evaluation tables, mssp-suite —
 * runs a set of *independent* jobs (one workload x config x seed
 * each). Simulations themselves are single-threaded and fully
 * deterministic, so the only parallelism worth having is across jobs,
 * and the only contract worth keeping is determinism: the merged
 * result of a parallel sweep must be byte-identical to the serial
 * sweep.
 *
 * Two pieces deliver that (DESIGN.md §10):
 *
 *  - ThreadPool: a small work-stealing pool. Job indices are dealt
 *    round-robin onto per-worker deques; a worker pops its own deque
 *    from the back (LIFO, cache-warm) and steals from the front of a
 *    sibling's deque when it runs dry (FIFO, oldest work first).
 *    runCollect() surfaces *every* job's exception positionally;
 *    run() keeps the historical compat contract of rethrowing only
 *    the first exception by *job index* (deterministic, but the rest
 *    are swallowed — new callers should go through runSupervised()
 *    in sim/supervisor.hh, which turns all failures into a
 *    structured quarantine report).
 *
 *  - runSharded(): executes a vector of result-returning closures on
 *    a pool and hands results to the caller (or a merge function) in
 *    canonical job order, whatever order they finished in. Jobs must
 *    not touch shared mutable state; everything they need is captured
 *    per-job, and per-run RNG seeds are preassigned from the job
 *    index (sim/rng.hh Rng::mix) so scheduling cannot leak into
 *    results.
 *
 * `jobs <= 1` bypasses the pool entirely — the closures run inline on
 * the calling thread in order, which is bit-for-bit the pre-parallel
 * code path (that is what `--jobs 1` means everywhere).
 */

#ifndef MSSP_SIM_PARALLEL_HH
#define MSSP_SIM_PARALLEL_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "sim/thread_annotations.hh"

namespace mssp
{

/** Host threads to use when the user gives no --jobs flag: the
 *  hardware concurrency, clamped to at least 1 (the standard allows
 *  hardware_concurrency() == 0 when unknowable). */
unsigned defaultJobs();

/**
 * Work-stealing pool of host worker threads.
 *
 * Workers are spawned once and reused across run() batches; run()
 * blocks the caller until the whole batch has drained. One batch at a
 * time: run() is not reentrant and must be called from one thread
 * (the sweep drivers are all structured that way).
 */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (clamped to >= 1). */
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threads() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Execute every job in @p jobs and block until all complete.
     * Jobs may run in any order on any worker. If one or more jobs
     * throw, the exception of the *lowest-indexed* throwing job is
     * rethrown here after the batch drains (the rest are swallowed) —
     * deterministic regardless of scheduling. This is the compat
     * error contract; callers that need every failure use
     * runCollect() (directly or via sim/supervisor.hh).
     */
    void run(std::vector<std::function<void()>> jobs);

    /**
     * Like run(), but never throws: the returned vector has one slot
     * per job, holding that job's exception (or nullptr). All
     * failures are surfaced positionally, so the caller can report
     * or quarantine each one instead of losing all but the first.
     */
    std::vector<std::exception_ptr>
    runCollect(std::vector<std::function<void()>> jobs);

  private:
    /** One worker's deque of pending job indices. */
    struct Shard
    {
        Mutex m;
        std::deque<size_t> q MSSP_GUARDED_BY(m);
    };

    void workerMain(unsigned self);
    /** Pop from own back, else steal from a sibling's front. */
    bool nextJob(unsigned self, size_t &idx);
    /** Run job @p idx from the batch snapshot taken under m_. */
    void execute(size_t idx, std::vector<std::function<void()>> &jobs,
                 std::vector<std::exception_ptr> &errors);

    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::thread> workers_;

    Mutex m_;
    CondVar wake_;                   ///< workers wait for a batch
    CondVar done_;                   ///< run() waits for the drain
    uint64_t batch_ MSSP_GUARDED_BY(m_) = 0;   ///< bumped per run()
    bool stop_ MSSP_GUARDED_BY(m_) = false;
    std::vector<std::function<void()>> *jobs_
        MSSP_GUARDED_BY(m_) = nullptr;
    std::vector<std::exception_ptr> *errors_
        MSSP_GUARDED_BY(m_) = nullptr;
    /** Jobs not yet finished in the current batch. Atomic, not
     *  guarded: execute() decrements it outside m_ and the waiter
     *  rechecks it under m_ after every done_ wakeup. */
    std::atomic<size_t> remaining_{0};
};

/**
 * Run @p work[i] for every i across @p jobs host threads and return
 * the results indexed exactly like @p work. With jobs <= 1 (or fewer
 * than two work items) everything runs inline on the calling thread
 * in order — the exact serial path.
 */
template <typename R>
std::vector<R>
runSharded(unsigned jobs, std::vector<std::function<R()>> work)
{
    std::vector<std::optional<R>> slots(work.size());
    if (jobs <= 1 || work.size() <= 1) {
        for (size_t i = 0; i < work.size(); ++i)
            slots[i].emplace(work[i]());
    } else {
        ThreadPool pool(std::min<size_t>(jobs, work.size()));
        std::vector<std::function<void()>> thunks;
        thunks.reserve(work.size());
        for (size_t i = 0; i < work.size(); ++i) {
            thunks.push_back(
                [&slots, &work, i] { slots[i].emplace(work[i]()); });
        }
        pool.run(std::move(thunks));
    }
    std::vector<R> results;
    results.reserve(slots.size());
    for (auto &slot : slots)
        results.push_back(std::move(*slot));
    return results;
}

/**
 * Same, but hand each result to @p merge in canonical job order
 * (0, 1, 2, ...) after the batch completes. Because the merge runs
 * serially on the calling thread in job order, any output it emits —
 * JSON rows, log lines, table cells — is byte-identical to what the
 * serial sweep would have produced.
 */
template <typename R, typename MergeFn>
void
runSharded(unsigned jobs, std::vector<std::function<R()>> work,
           MergeFn &&merge)
{
    std::vector<R> results = runSharded<R>(jobs, std::move(work));
    for (size_t i = 0; i < results.size(); ++i)
        merge(i, std::move(results[i]));
}

} // namespace mssp

#endif // MSSP_SIM_PARALLEL_HH

#include "sim/supervisor.hh"

#include <cstdlib>

#include "sim/rng.hh"

namespace mssp
{

namespace
{

thread_local Supervision *tls_supervision = nullptr;

uint64_t
envU64(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0') {
        fatal("%s: expected a nonnegative integer, got '%s'", name, v);
    }
    return parsed;
}

} // anonymous namespace

JobBudget
budgetFromEnv(JobBudget base)
{
    base.timeoutMs = envU64("MSSP_JOB_TIMEOUT_MS", base.timeoutMs);
    base.maxInsts = envU64("MSSP_JOB_MAX_INSTS", base.maxInsts);
    return base;
}

Supervision::Supervision(const JobBudget &budget, CancelToken *cancel)
    : budget_(budget), cancel_(cancel)
{
    if (budget_.timeoutMs != 0) {
        deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(budget_.timeoutMs);
        has_deadline_ = true;
    }
}

void
Supervision::trip(StatusCode code)
{
    // Sticky: only the first trip wins; later polls (and this throw)
    // re-report the winner so nested run loops unwind coherently.
    StatusCode expected = StatusCode::Ok;
    trip_.compare_exchange_strong(expected, code,
                                  std::memory_order_acq_rel);
    throw StatusError(status());
}

Status
Supervision::status() const
{
    StatusCode code = trip_.load(std::memory_order_acquire);
    switch (code) {
      case StatusCode::Ok:
        return Status();
      case StatusCode::Cancelled:
        return Status(code, "job cancelled");
      case StatusCode::DeadlineExceeded:
        return Status(code, "wall-clock deadline exceeded");
      case StatusCode::InstLimitExceeded:
        return Status(code, "instruction budget exhausted");
      case StatusCode::CommitLimitExceeded:
        return Status(code, "retired-work budget exhausted");
      default:
        return Status(code, "supervision trip");
    }
}

bool
Supervision::tripped() const
{
    return trip_.load(std::memory_order_acquire) != StatusCode::Ok;
}

Status
Supervision::check()
{
    if (tripped())
        return status();
    if (cancel_ && cancel_->cancelled())
        return Status(StatusCode::Cancelled, "job cancelled");
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
        return Status(StatusCode::DeadlineExceeded,
                      "wall-clock deadline exceeded");
    }
    return Status();
}

void
Supervision::checkOrThrow()
{
    if (tripped())
        throw StatusError(status());
    if (cancel_ && cancel_->cancelled())
        trip(StatusCode::Cancelled);
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_)
        trip(StatusCode::DeadlineExceeded);
}

void
Supervision::consume(uint64_t executed, uint64_t committed)
{
    uint64_t total_exec =
        executed_.fetch_add(executed, std::memory_order_relaxed) +
        executed;
    uint64_t total_commit =
        committed_.fetch_add(committed, std::memory_order_relaxed) +
        committed;
    if (budget_.maxInsts != 0 && total_exec > budget_.maxInsts)
        trip(StatusCode::InstLimitExceeded);
    if (budget_.maxCommits != 0 && total_commit > budget_.maxCommits)
        trip(StatusCode::CommitLimitExceeded);
}

uint64_t
Supervision::instsRemaining() const
{
    if (budget_.maxInsts == 0)
        return UINT64_MAX;
    uint64_t used = executed_.load(std::memory_order_relaxed);
    return used >= budget_.maxInsts ? 0 : budget_.maxInsts - used;
}

void
Supervision::tripInstLimit()
{
    trip(StatusCode::InstLimitExceeded);
}

Supervision *
currentSupervision()
{
    return tls_supervision;
}

SupervisionScope::SupervisionScope(Supervision *sup)
    : prev_(tls_supervision)
{
    tls_supervision = sup;
}

SupervisionScope::~SupervisionScope()
{
    tls_supervision = prev_;
}

uint64_t
retryDelayUs(const RetryPolicy &policy, uint64_t seed, size_t job,
             unsigned attempt)
{
    MSSP_ASSERT(attempt >= 2);
    unsigned shift = attempt - 2;
    uint64_t base = policy.backoffBaseUs;
    // Saturate the doubling instead of shifting into the void.
    if (shift < 64 && (base << shift) >> shift == base)
        base <<= shift;
    else
        base = policy.backoffMaxUs;
    base = std::min(base, policy.backoffMaxUs);
    if (base <= 1)
        return base;
    // Jitter into [base/2, base): streams keyed on (seed, job,
    // attempt) only — wall time and scheduling never feed in.
    Rng rng(Rng::mix(seed, job * 257 + attempt));
    uint64_t half = base / 2;
    return half + rng.below(base - half);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += strfmt("\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
QuarantineReport::toJson() const
{
    std::string out = "[";
    for (size_t i = 0; i < entries.size(); ++i) {
        const QuarantineEntry &e = entries[i];
        out += strfmt(
            "%s{\"index\": %zu, \"label\": \"%s\", \"attempts\": %u, "
            "\"status\": \"%s\", \"message\": \"%s\"}",
            i ? ", " : "", e.jobIndex,
            jsonEscape(e.label).c_str(), e.attempts,
            toString(e.status.code()),
            jsonEscape(e.status.message()).c_str());
    }
    out += "]";
    return out;
}

std::string
QuarantineReport::summary() const
{
    std::string s;
    for (const QuarantineEntry &e : entries) {
        s += strfmt("  quarantined [%zu] %-24s after %u attempt(s): "
                    "%s\n",
                    e.jobIndex, e.label.c_str(), e.attempts,
                    e.status.toString().c_str());
    }
    return s;
}

} // namespace mssp

/**
 * @file
 * Job supervision: budgets, cooperative cancellation, retry with
 * deterministic backoff, and N-strikes quarantine for sharded sweeps.
 *
 * The repo's execution paths (SeqMachine, MsspMachine, and every
 * sweep built on sim/parallel.hh) are all pure compute loops; nothing
 * bounds them but their own cycle caps, and one throwing job used to
 * abort a whole sweep. This header makes any job boundable and
 * cancellable without killing the process (the prerequisite for the
 * ROADMAP item-5 server loop):
 *
 *  - CancelToken / JobBudget / Supervision: an armed budget (wall
 *    clock + executed-instruction cap + retired-work cap) plus a
 *    cooperative cancel flag. Machines poll the *thread-local current
 *    supervision* (SupervisionScope) at architecturally consistent
 *    boundaries — SeqMachine between bounded engine slices on every
 *    backend tier, MsspMachine every 1024 machine cycles — and throw
 *    StatusError on a trip. Because the poll sites are consistent
 *    points, a cancelled machine is state-clean: it can be inspected
 *    or resumed. With no scope installed the machines pay one
 *    pointer test per run() call — nothing on the per-instruction
 *    path (the BM_SeqInterpreter gate enforces this).
 *
 *  - runSupervised(): runSharded's hardened sibling. Each job gets
 *    fresh per-attempt supervision, up to RetryPolicy::maxAttempts
 *    tries with exponential backoff and deterministic jitter
 *    (sim/rng.hh Rng::mix keyed on (seed, job, attempt) — never on
 *    time or scheduling), and a job that exhausts its attempts is
 *    *quarantined*: its structured Status lands in a QuarantineReport
 *    and every healthy result is still returned. All failures are
 *    surfaced, not just the lowest-indexed one; the legacy
 *    rethrow-first behavior survives behind
 *    SupervisorOptions::rethrowFirstFailure for unmigrated callers.
 *    Everything is keyed on canonical job indices, so reports are
 *    byte-identical for --jobs N vs --jobs 1.
 *
 *  - JobChaosHook: the seam where fault/hostchaos.hh injects
 *    deterministic worker stalls, job exceptions, and spurious
 *    cancellations into the pool-execution surface (docs/FAULTS.md).
 */

#ifndef MSSP_SIM_SUPERVISOR_HH
#define MSSP_SIM_SUPERVISOR_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "sim/parallel.hh"
#include "sim/status.hh"

namespace mssp
{

/** Cooperative cancellation flag. cancel() may be called from any
 *  thread; the running job observes it at its next supervision poll
 *  and stops with StatusCode::Cancelled. */
class CancelToken
{
  public:
    void cancel() { cancelled_.store(true, std::memory_order_release); }
    bool
    cancelled() const
    {
        return cancelled_.load(std::memory_order_acquire);
    }
    /** Re-arm after a cooperative stop (tests resume machines). */
    void reset() { cancelled_.store(false, std::memory_order_release); }

  private:
    std::atomic<bool> cancelled_{false};
};

/** Per-attempt resource budget. 0 = unlimited for every field. */
struct JobBudget
{
    /** Wall-clock deadline, armed when the Supervision is built.
     *  Inherently host-timing dependent: quarantine decisions made on
     *  wall deadlines are *not* part of the byte-determinism
     *  contract (the instruction caps are). */
    uint64_t timeoutMs = 0;
    /** Cap on executed instructions (attempts included), summed over
     *  every machine the job runs. Deterministic. */
    uint64_t maxInsts = 0;
    /** Cap on retired/committed work (SEQ: == executed; MSSP:
     *  architected instret). Deterministic. */
    uint64_t maxCommits = 0;

    bool
    active() const
    {
        return timeoutMs != 0 || maxInsts != 0 || maxCommits != 0;
    }
};

/** JobBudget with MSSP_JOB_TIMEOUT_MS / MSSP_JOB_MAX_INSTS applied on
 *  top of @p base (flags override env; env overrides nothing). */
JobBudget budgetFromEnv(JobBudget base = {});

/**
 * One armed budget + cancel flag. Built per job attempt (the wall
 * deadline arms at construction), installed via SupervisionScope,
 * polled by the machines. The first trip is sticky: once a budget
 * trips, every later poll reports the same status, so nested run
 * loops unwind coherently.
 */
class Supervision
{
  public:
    explicit Supervision(const JobBudget &budget,
                         CancelToken *cancel = nullptr);

    /** Poll cancel + wall deadline (and any sticky trip). */
    Status check();

    /** check(), throwing StatusError on a trip. */
    void checkOrThrow();

    /**
     * Account @p executed attempted instructions and @p committed
     * retired ones, then throw StatusError if a cap is now exceeded
     * (strictly: a job that finishes exactly on budget passes).
     * Callers that can clamp their slice to instsRemaining() — the
     * SeqMachine chunk loop — enforce the cap exactly and never trip
     * here; the MSSP machine trips post-hoc at poll granularity.
     */
    void consume(uint64_t executed, uint64_t committed);

    /** Instructions left under maxInsts (UINT64_MAX = uncapped). */
    uint64_t instsRemaining() const;

    /** Record an instruction-cap trip and throw (the chunk loop calls
     *  this when instsRemaining() hits zero with work left). */
    [[noreturn]] void tripInstLimit();

    bool tripped() const;
    /** The sticky trip as a Status (Ok when never tripped). */
    Status status() const;

    uint64_t
    executed() const
    {
        return executed_.load(std::memory_order_relaxed);
    }
    uint64_t
    committed() const
    {
        return committed_.load(std::memory_order_relaxed);
    }

  private:
    [[noreturn]] void trip(StatusCode code);

    JobBudget budget_;
    CancelToken *cancel_;
    std::chrono::steady_clock::time_point deadline_{};
    bool has_deadline_ = false;
    std::atomic<uint64_t> executed_{0};
    std::atomic<uint64_t> committed_{0};
    /** Sticky first trip (codes carry fixed messages, so the code
     *  alone reconstructs the Status deterministically). */
    std::atomic<StatusCode> trip_{StatusCode::Ok};
};

/** The supervision governing the calling thread (nullptr = none).
 *  SeqMachine::run and MsspMachine::run poll this, which is how a
 *  per-job budget reaches every machine a job constructs — profiler,
 *  oracle, crossval replays — without threading a parameter through
 *  the whole pipeline. */
Supervision *currentSupervision();

/** RAII installer for currentSupervision() (saves and restores, so
 *  scopes nest). */
class SupervisionScope
{
  public:
    explicit SupervisionScope(Supervision *sup);
    ~SupervisionScope();

    SupervisionScope(const SupervisionScope &) = delete;
    SupervisionScope &operator=(const SupervisionScope &) = delete;

  private:
    Supervision *prev_;
};

/** Retry shape for one sweep: N strikes, exponential backoff. */
struct RetryPolicy
{
    /** Total attempts per job before quarantine (1 = no retry). */
    unsigned maxAttempts = 1;
    /** Backoff before attempt k (k >= 2):
     *  base = min(backoffMaxUs, backoffBaseUs << (k - 2)), jittered
     *  deterministically into [base/2, base). */
    uint64_t backoffBaseUs = 500;
    uint64_t backoffMaxUs = 50000;
};

/** The deterministic backoff delay before attempt @p attempt (>= 2)
 *  of job @p job: exponential in the attempt, jitter from
 *  Rng::mix(seed, ...) — a pure function, asserted reproducible in
 *  tests/test_supervisor.cpp. */
uint64_t retryDelayUs(const RetryPolicy &policy, uint64_t seed,
                      size_t job, unsigned attempt);

/** Chaos seam: fault/hostchaos.hh implements this to perturb the
 *  pool-execution surface deterministically. */
class JobChaosHook
{
  public:
    virtual ~JobChaosHook() = default;

    /** Before the attempt's work runs on the worker thread: may stall
     *  the worker and/or pre-cancel the attempt's token. */
    virtual void onAttemptStart(size_t job, unsigned attempt,
                                CancelToken &cancel) = 0;

    /** First statement inside the supervised try-block: may throw an
     *  injected exception. */
    virtual void onAttemptBody(size_t job, unsigned attempt) = 0;
};

/** How runSupervised runs a batch. */
struct SupervisorOptions
{
    RetryPolicy retry;
    /** Per-attempt budget applied to every job (0s = unbounded). */
    JobBudget budget;
    /** Stream seed for backoff jitter (and nothing else). */
    uint64_t seed = 1;
    /** Optional host-chaos injector (non-owning). */
    JobChaosHook *chaos = nullptr;
    /** Compat flag (pre-quarantine behavior): after the batch drains,
     *  rethrow the lowest-indexed failure as StatusError instead of
     *  quarantining — sim/parallel.hh's historical contract. New
     *  callers should leave this off and consume the report. */
    bool rethrowFirstFailure = false;
};

/** One quarantined job: which, after how many strikes, and why. */
struct QuarantineEntry
{
    size_t jobIndex = 0;
    std::string label;
    unsigned attempts = 0;
    Status status;
};

/** Every failed job of a sweep, in canonical job order. */
struct QuarantineReport
{
    std::vector<QuarantineEntry> entries;

    bool empty() const { return entries.empty(); }
    size_t size() const { return entries.size(); }

    /** Deterministic JSON array (embedded by the campaign and suite
     *  documents; docs/SCHEMAS.md). */
    std::string toJson() const;

    /** Human-readable lines, one per entry. */
    std::string summary() const;
};

/** What a supervised job handed back (exactly one of value/status). */
template <typename R>
struct JobOutcome
{
    std::optional<R> value;
    Status status;           ///< Ok iff value is set
    unsigned attempts = 0;   ///< attempts consumed (>= 1)

    bool ok() const { return status.ok(); }
};

/** Healthy results plus the quarantine, both in canonical order. */
template <typename R>
struct SupervisedResult
{
    std::vector<JobOutcome<R>> outcomes;
    QuarantineReport quarantine;
};

/** What a job body may inspect about its own supervision. */
struct JobContext
{
    size_t index = 0;        ///< canonical job index
    unsigned attempt = 1;    ///< 1-based attempt number
    CancelToken *cancel = nullptr;
    Supervision *supervision = nullptr;
};

/** Minimal JSON string escaping (quotes, backslashes, control
 *  bytes) for the deterministic reports. */
std::string jsonEscape(const std::string &s);

namespace detail
{

/** One job's full retry loop (runs on a worker thread). Never lets an
 *  exception escape: every outcome becomes a structured Status. */
template <typename R>
void
superviseJob(const std::function<R(const JobContext &)> &fn,
             const SupervisorOptions &opts, size_t index,
             JobOutcome<R> &out)
{
    unsigned max_attempts = std::max(1u, opts.retry.maxAttempts);
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        out.attempts = attempt;
        if (attempt > 1) {
            std::this_thread::sleep_for(std::chrono::microseconds(
                retryDelayUs(opts.retry, opts.seed, index, attempt)));
        }
        CancelToken cancel;
        if (opts.chaos)
            opts.chaos->onAttemptStart(index, attempt, cancel);
        Supervision sup(opts.budget, &cancel);
        SupervisionScope scope(&sup);
        JobContext ctx{index, attempt, &cancel, &sup};
        try {
            if (opts.chaos)
                opts.chaos->onAttemptBody(index, attempt);
            out.value.emplace(fn(ctx));
            out.status = Status();
            return;
        } catch (const StatusError &e) {
            out.status = e.status();
        } catch (const std::exception &e) {
            out.status = Status(StatusCode::JobFailed, e.what());
        } catch (...) {
            out.status =
                Status(StatusCode::JobFailed, "unknown exception");
        }
        out.value.reset();
    }
}

} // namespace detail

/**
 * Run @p work across @p jobs host threads with per-job supervision
 * (see the file comment). Results and quarantine entries are indexed
 * and ordered canonically; `jobs <= 1` runs inline on the calling
 * thread — the exact serial path, including chaos and retries, so
 * sharded and serial sweeps stay byte-identical.
 *
 * @p labels (optional) names jobs in the quarantine report
 * ("gzip/spawn-drop/0.2"); jobs without one get "job <index>".
 */
template <typename R>
SupervisedResult<R>
runSupervised(unsigned jobs,
              std::vector<std::function<R(const JobContext &)>> work,
              const SupervisorOptions &opts,
              std::vector<std::string> labels = {})
{
    SupervisedResult<R> result;
    result.outcomes.resize(work.size());
    std::vector<std::function<void()>> thunks;
    thunks.reserve(work.size());
    for (size_t i = 0; i < work.size(); ++i) {
        thunks.push_back([&work, &opts, &result, i] {
            detail::superviseJob<R>(work[i], opts, i,
                                    result.outcomes[i]);
        });
    }
    if (jobs <= 1 || thunks.size() <= 1) {
        for (auto &thunk : thunks)
            thunk();
    } else {
        ThreadPool pool(
            static_cast<unsigned>(std::min<size_t>(jobs, thunks.size())));
        pool.run(std::move(thunks));
    }
    for (size_t i = 0; i < result.outcomes.size(); ++i) {
        const JobOutcome<R> &out = result.outcomes[i];
        if (out.status.ok())
            continue;
        if (opts.rethrowFirstFailure)
            throw StatusError(out.status);
        result.quarantine.entries.push_back(
            {i,
             i < labels.size() ? labels[i] : strfmt("job %zu", i),
             out.attempts, out.status});
    }
    return result;
}

} // namespace mssp

#endif // MSSP_SIM_SUPERVISOR_HH

#include "formal/abstract_model.hh"

#include "exec/executor.hh"
#include "sim/logging.hh"

namespace mssp::formal
{

namespace
{

/**
 * ExecContext over a partial state that *fails* (records
 * incompleteness) when execution reads an unbound cell — the
 * executable form of the paper's completeness predicate.
 */
class PartialStateContext final : public ExecContext
{
  public:
    explicit PartialStateContext(State &s) : state_(s) {}

    bool incomplete = false;

    uint32_t
    readReg(unsigned r) override
    {
        auto v = state_.get(makeRegCell(r));
        if (!v) {
            incomplete = true;
            return 0;
        }
        return *v;
    }
    void
    writeReg(unsigned r, uint32_t v) override
    {
        state_.set(makeRegCell(r), v);
    }
    uint32_t
    readMem(uint32_t addr) override
    {
        auto v = state_.get(makeMemCell(addr));
        if (!v) {
            incomplete = true;
            return 0;
        }
        return *v;
    }
    void
    writeMem(uint32_t addr, uint32_t v) override
    {
        state_.set(makeMemCell(addr), v);
    }
    uint32_t
    fetch(uint32_t pc) override
    {
        // Completeness requires the instruction cell itself.
        auto v = state_.get(makeMemCell(pc));
        if (!v) {
            incomplete = true;
            return 0;
        }
        return *v;
    }
    void output(uint16_t, uint32_t) override {}

  private:
    State &state_;
};

/** Advance a partial state by one instruction (next). */
bool
stepState(State &s)
{
    auto pc = s.get(PcCell);
    if (!pc)
        return false;
    PartialStateContext ctx(s);
    StepResult res = stepAt(*pc, ctx);
    if (ctx.incomplete)
        return false;
    switch (res.status) {
      case StepStatus::Ok:
        s.set(PcCell, res.nextPc);
        return true;
      case StepStatus::Halted:
        // A halted state is a fixed point of `next`.
        return true;
      case StepStatus::Illegal:
      default:
        return false;
    }
}

} // anonymous namespace

std::optional<State>
seq(const State &s, uint64_t n)
{
    State cur = s;
    for (uint64_t i = 0; i < n; ++i) {
        if (!stepState(cur))
            return std::nullopt;
    }
    return cur;
}

bool
evolve(AbstractTask &t)
{
    if (t.complete())
        return true;   // fixed point (Definition 5, second case)
    if (!stepState(t.out))
        return false;
    ++t.k;
    return true;
}

bool
evolveToCompletion(AbstractTask &t)
{
    while (!t.complete()) {
        if (!evolve(t))
            return false;
    }
    return true;
}

bool
isSafe(const AbstractTask &t, const State &s)
{
    MSSP_ASSERT(t.complete());
    auto advanced = seq(s, t.n);
    if (!advanced)
        return false;
    State superimposed = StateDelta::superimposed(s, t.out);
    return *advanced == superimposed;
}

bool
consistentAndComplete(const AbstractTask &t, const State &s)
{
    if (!t.in.consistentWith(s))
        return false;
    // #t-completeness of the live-in set: evolving a copy of the task
    // from S_in must never read an unbound cell.
    AbstractTask probe;
    probe.in = t.in;
    probe.out = t.in;
    probe.n = t.n;
    return evolveToCompletion(probe);
}

State
msspRun(State s, std::vector<AbstractTask> tasks,
        const std::vector<size_t> &commit_order,
        size_t *committed_count)
{
    size_t committed = 0;
    for (size_t idx : commit_order) {
        MSSP_ASSERT(idx < tasks.size());
        AbstractTask &t = tasks[idx];
        if (!t.complete())
            continue;   // only completed tasks reach the commit unit
        if (!isSafe(t, s))
            continue;   // unsafe when its turn comes: discard
        s = StateDelta::superimposed(s, t.out);
        ++committed;
    }
    if (committed_count)
        *committed_count = committed;
    return s;
}

} // namespace mssp::formal

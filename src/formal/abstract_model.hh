/**
 * @file
 * The companion paper's abstract MSSP model, executable.
 *
 * The formal paper (Salverda/Roşu/Zilles) defines MSSP at three
 * abstraction levels; this module implements the second/third-level
 * model directly over StateDelta machine states:
 *
 *  - tasks are 4-tuples <S_in, n, S_out, k> (Definition 4);
 *  - task evolution steps S_out by `next` (Definition 5), so a
 *    completed task has S_out = seq(S_in, n) (Lemma 2);
 *  - task safety is seq(S, #t) == S <- live_out(t) (Definition 6),
 *    established implementation-independently by consistency +
 *    completeness (Theorem 2);
 *  - the machine relation mssp(S, t|τ) => mssp(S <- live_out(t), τ)
 *    commits any *safe* task, in any order (Definition 7) — order
 *    affects only efficiency, never correctness (Theorem 1).
 *
 * The `next` function here is the real μRISC executor, so the
 * abstract model and the microarchitectural machine share semantics;
 * tests/test_abstract_model.cpp machine-checks the lemmas on real
 * programs, mirroring what the authors did in Maude.
 */

#ifndef MSSP_FORMAL_ABSTRACT_MODEL_HH
#define MSSP_FORMAL_ABSTRACT_MODEL_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/state_delta.hh"

namespace mssp::formal
{

/**
 * A machine state for the abstract model: a *partial* map from cells
 * to values (live-in and live-out sets are machine states too, per
 * Section 4.1). The PC is the distinguished PcCell binding.
 */
using State = StateDelta;

/** The abstract task: <S_in, n, S_out, k> (Definition 4). */
struct AbstractTask
{
    State in;        ///< S_in: live-in set (includes a PC binding)
    uint64_t n = 0;  ///< instructions constituting complete execution
    State out;       ///< S_out: live-out set (= S_in at creation)
    uint64_t k = 0;  ///< instructions executed so far

    bool complete() const { return k >= n; }
};

/**
 * seq(S, n): advance a partial state by n instructions using the real
 * executor (the formal model's uninterpreted `next`, interpreted).
 *
 * @return nullopt when the state is not n-complete — some cell needed
 *         by execution has no binding (Definition 9's completeness
 *         precondition fails)
 */
std::optional<State> seq(const State &s, uint64_t n);

/**
 * One task-evolution step (Definition 5): S_out := next(S_out),
 * k := k+1 when k < n; completed tasks are fixed points.
 *
 * @retval false when evolution would read an unbound cell
 */
bool evolve(AbstractTask &t);

/** Evolve to completion (Lemma 2). @retval false on incompleteness */
bool evolveToCompletion(AbstractTask &t);

/**
 * Task safety (Definition 6): seq(S, #t) == S <- live_out(t), for a
 * *completed* task. S must be a full-machine state (n-complete).
 */
bool isSafe(const AbstractTask &t, const State &s);

/**
 * Sufficient condition (Theorem 2): live_in(t) ⊑ S and live_in(t) is
 * #t-complete imply safety. This checks the *premises* only; tests
 * verify it implies isSafe().
 */
bool consistentAndComplete(const AbstractTask &t, const State &s);

/**
 * The abstract machine (Definitions 3/7): commit safe tasks from the
 * multiset in the order given by @p commit_order (any permutation of
 * indices), discarding tasks that are unsafe when their turn comes —
 * matching the model where a poor commit order only loses work.
 *
 * @return the final architected state
 */
State msspRun(State s, std::vector<AbstractTask> tasks,
              const std::vector<size_t> &commit_order,
              size_t *committed_count = nullptr);

} // namespace mssp::formal

#endif // MSSP_FORMAL_ABSTRACT_MODEL_HH

/**
 * @file
 * Binary program container.
 *
 * A Program is an initial memory image (sparse words covering both
 * encoded instructions and initialized data), an entry PC and a symbol
 * table. It is produced by the Assembler or by the Distiller and
 * loaded into an ArchState (or fetched directly, in the master's
 * case).
 */

#ifndef MSSP_ASM_PROGRAM_HH
#define MSSP_ASM_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>

namespace mssp
{

/** Default base address for code emitted by the assembler. */
constexpr uint32_t DefaultCodeBase = 0x1000;

/** Base address at which the distiller lays out distilled code. */
constexpr uint32_t DistilledCodeBase = 0x400000;

/** An executable image: sparse initial memory, entry point, symbols. */
class Program
{
  public:
    /** Word at @p addr in the initial image (0 when absent). */
    uint32_t
    word(uint32_t addr) const
    {
        auto it = image_.find(addr);
        return it == image_.end() ? 0 : it->second;
    }

    bool hasWord(uint32_t addr) const { return image_.count(addr); }

    void setWord(uint32_t addr, uint32_t value) { image_[addr] = value; }

    const std::map<uint32_t, uint32_t> &image() const { return image_; }

    uint32_t entry() const { return entry_; }
    void setEntry(uint32_t pc) { entry_ = pc; }

    /** Define a symbol (assembler label). */
    void
    defineSymbol(const std::string &name, uint32_t value)
    {
        symbols_[name] = value;
    }

    /** Look up a symbol; returns false if undefined. */
    bool
    lookupSymbol(const std::string &name, uint32_t &value) const
    {
        auto it = symbols_.find(name);
        if (it == symbols_.end())
            return false;
        value = it->second;
        return true;
    }

    const std::map<std::string, uint32_t> &symbols() const
    {
        return symbols_;
    }

    /** Number of words in the initial image. */
    size_t sizeWords() const { return image_.size(); }

    /**
     * Disassembly of [start, start+count) as multi-line text (for
     * debugging and the distillation_tour example).
     */
    std::string disassembleRange(uint32_t start, uint32_t count) const;

  private:
    std::map<uint32_t, uint32_t> image_;
    std::map<std::string, uint32_t> symbols_;
    uint32_t entry_ = DefaultCodeBase;
};

} // namespace mssp

#endif // MSSP_ASM_PROGRAM_HH

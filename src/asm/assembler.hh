/**
 * @file
 * Two-pass μRISC assembler.
 *
 * Syntax overview (see README for the full reference):
 *
 *   ; comment   # comment   // comment
 *   .org 0x1000          set the location counter
 *   .equ NAME, expr      define an assembly-time constant
 *   .entry label         set the program entry point
 *   .word v, v, ...      emit data words (numbers or symbols)
 *   .space n             reserve n zero words
 *   label:               define a label (may share a line with code)
 *
 *   add rd, rs1, rs2     R-type ops
 *   addi rd, rs1, imm    I-type ops
 *   lw rd, off(rs1)      load;  sw rs2, off(rs1)  store
 *   beq rs1, rs2, label  branches
 *   jal rd, label        jump-and-link; jalr rd, rs1, imm
 *   out rs, port         program output
 *
 * Pseudo-instructions: li, la, mv, j, call, ret, beqz, bnez, bgt,
 * ble, bgtu, bleu, neg, subi, nop, halt.
 *
 * Note on logical immediates: andi/ori/xori zero-extend their 16-bit
 * immediate (MIPS-style) so that `lui+ori` composes 32-bit constants;
 * addi/slti/sltiu sign-extend.
 */

#ifndef MSSP_ASM_ASSEMBLER_HH
#define MSSP_ASM_ASSEMBLER_HH

#include <string>

#include "asm/program.hh"
#include "sim/status.hh"

namespace mssp
{

/**
 * Assemble μRISC source text into a Program.
 *
 * @param source full assembly source
 * @return the assembled program
 * @throws FatalError with a "line N: ..." message on any syntax or
 *         range error
 */
Program assemble(const std::string &source);

/** Untrusted-input form of assemble(): StatusCode::ParseError with
 *  the assembler's line-numbered message instead of a throw (the
 *  objfile fuzz gate drives this path too). */
Result<Program> parseAssembly(const std::string &source);

} // namespace mssp

#endif // MSSP_ASM_ASSEMBLER_HH

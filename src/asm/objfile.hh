/**
 * @file
 * Object-file serialization.
 *
 * A simple line-oriented text format ("mssp-object v1") that stores a
 * Program (image + entry + symbols), and an extended form
 * ("mssp-distilled v1") that additionally stores a DistilledProgram's
 * task map, per-site fork intervals, entry map, address map and
 * report. Used by the CLI tools (tools/) so the assemble / distill /
 * run steps can be separate processes, like a real toolchain.
 *
 * Two API shapes. The throwing loaders (loadProgram/loadDistilled)
 * fatal() with a line number — right for trusted pipeline-internal
 * round trips. The Result-returning parsers (parseProgram/
 * parseDistilled) never throw on malformed input: every outcome is a
 * structured Status (sim/status.hh), which is the contract for
 * *untrusted* bytes — anything read from disk or a socket. All paths
 * are bounds-checked; in particular a hostile `fork` index cannot
 * force a multi-gigabyte task-map allocation (kMaxForkIndex). The
 * seeded mutation fuzzer (tests/test_objfile_fuzz.cpp) drives the
 * Result paths and asserts no crash and no unstructured escape.
 */

#ifndef MSSP_ASM_OBJFILE_HH
#define MSSP_ASM_OBJFILE_HH

#include <string>

#include "asm/program.hh"
#include "distill/distiller.hh"
#include "sim/status.hh"

namespace mssp
{

/** Serialize a Program. */
std::string saveProgram(const Program &prog);

/** Parse a Program; fatal() with a line number on malformed input. */
Program loadProgram(const std::string &text);

/** Serialize a DistilledProgram. */
std::string saveDistilled(const DistilledProgram &dist);

/** Parse a DistilledProgram; fatal() on malformed input. */
DistilledProgram loadDistilled(const std::string &text);

/** Largest accepted `fork` site index. Generous (the distiller emits
 *  a few dozen sites) while keeping the task-map allocation a
 *  malformed or hostile index can force bounded. */
constexpr size_t kMaxForkIndex = 1u << 20;

/** Untrusted-input form of loadProgram: StatusCode::ParseError with
 *  the loader's line-numbered message instead of a throw. */
Result<Program> parseProgram(const std::string &text);

/** Untrusted-input form of loadDistilled. */
Result<DistilledProgram> parseDistilled(const std::string &text);

} // namespace mssp

#endif // MSSP_ASM_OBJFILE_HH

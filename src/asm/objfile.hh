/**
 * @file
 * Object-file serialization.
 *
 * A simple line-oriented text format ("mssp-object v1") that stores a
 * Program (image + entry + symbols), and an extended form
 * ("mssp-distilled v1") that additionally stores a DistilledProgram's
 * task map, per-site fork intervals, entry map, address map and
 * report. Used by the CLI tools (tools/) so the assemble / distill /
 * run steps can be separate processes, like a real toolchain.
 */

#ifndef MSSP_ASM_OBJFILE_HH
#define MSSP_ASM_OBJFILE_HH

#include <string>

#include "asm/program.hh"
#include "distill/distiller.hh"

namespace mssp
{

/** Serialize a Program. */
std::string saveProgram(const Program &prog);

/** Parse a Program; fatal() with a line number on malformed input. */
Program loadProgram(const std::string &text);

/** Serialize a DistilledProgram. */
std::string saveDistilled(const DistilledProgram &dist);

/** Parse a DistilledProgram; fatal() on malformed input. */
DistilledProgram loadDistilled(const std::string &text);

} // namespace mssp

#endif // MSSP_ASM_OBJFILE_HH

#include "asm/objfile.hh"

#include "sim/logging.hh"
#include "util/string_utils.hh"

namespace mssp
{

namespace
{

const char *kProgramMagic = "mssp-object v1";
/** Format v2 extended `edit` lines with semantic metadata (value,
 *  region leader, live-out mask); v3 adds per-load speculation-
 *  safety classes (`specload` lines, analysis/specsafe.hh); v4 adds
 *  the ranked speculation plan (`specplan` lines,
 *  analysis/specplan.hh); v5 adds speculated-edit records
 *  (`specedit` lines, distill/speculate.cc), the feedback generation
 *  counter (`specgen`) and de-speculated load PCs (`specdrop`,
 *  eval/adapt.hh). Version mismatches in either direction are
 *  rejected loudly: a misparsed edit log would silently disable the
 *  semantic checks, and an image without load classes, a plan, or
 *  its speculated-edit records would fail the coverage gates in
 *  confusing ways. */
const char *kDistilledMagic = "mssp-distilled v5";
const char *kDistilledFamily = "mssp-distilled";

void
appendProgramBody(const Program &prog, std::string &out)
{
    out += strfmt("entry 0x%x\n", prog.entry());
    for (const auto &[addr, word] : prog.image())
        out += strfmt("word 0x%x 0x%x\n", addr, word);
    for (const auto &[name, value] : prog.symbols())
        out += strfmt("sym %s 0x%x\n", name.c_str(), value);
}

/** Shared line parser; dispatches unknown keys to @p extra. */
template <typename ExtraHandler>
void
parseLines(const std::string &text, const char *magic, Program &prog,
           ExtraHandler &&extra)
{
    auto lines = split(text, '\n');
    if (lines.empty() || trim(lines[0]) != magic) {
        std::string got =
            lines.empty() ? std::string() : std::string(trim(lines[0]));
        // A right-family, wrong-version header deserves a precise
        // message: the file is a distilled object, just not ours.
        if (startsWith(got, kDistilledFamily) &&
            startsWith(magic, kDistilledFamily)) {
            fatal("unsupported object format version: file says "
                  "'%s', this build reads '%s' (re-run mssp-distill "
                  "to regenerate the image)",
                  got.c_str(), magic);
        }
        fatal("bad object file: expected '%s' header", magic);
    }

    auto want_int = [](std::string_view tok, int line_no) {
        int64_t v;
        if (!parseInt(tok, v)) {
            fatal("object line %d: bad integer '%s'", line_no,
                  std::string(tok).c_str());
        }
        return static_cast<uint32_t>(v);
    };

    for (size_t i = 1; i < lines.size(); ++i) {
        auto toks = splitWs(lines[i]);
        if (toks.empty() || toks[0][0] == ';')
            continue;
        int line_no = static_cast<int>(i + 1);
        std::string_view key = toks[0];
        if (key == "entry" && toks.size() == 2) {
            prog.setEntry(want_int(toks[1], line_no));
        } else if (key == "word" && toks.size() == 3) {
            prog.setWord(want_int(toks[1], line_no),
                         want_int(toks[2], line_no));
        } else if (key == "sym" && toks.size() == 3) {
            prog.defineSymbol(std::string(toks[1]),
                              want_int(toks[2], line_no));
        } else if (!extra(toks, line_no, want_int)) {
            fatal("object line %d: unknown directive '%s'", line_no,
                  std::string(key).c_str());
        }
    }
}

} // anonymous namespace

std::string
saveProgram(const Program &prog)
{
    std::string out = std::string(kProgramMagic) + "\n";
    appendProgramBody(prog, out);
    return out;
}

Program
loadProgram(const std::string &text)
{
    Program prog;
    parseLines(text, kProgramMagic, prog,
               [](const auto &, int, auto &) { return false; });
    return prog;
}

std::string
saveDistilled(const DistilledProgram &dist)
{
    std::string out = std::string(kDistilledMagic) + "\n";
    appendProgramBody(dist.prog, out);
    for (size_t i = 0; i < dist.taskMap.size(); ++i) {
        uint32_t interval = i < dist.taskIntervals.size()
                                ? dist.taskIntervals[i]
                                : 1;
        out += strfmt("fork %zu 0x%x %u\n", i, dist.taskMap[i],
                      interval);
    }
    for (const auto &[orig, distilled] : dist.entryMap)
        out += strfmt("restart 0x%x 0x%x\n", orig, distilled);
    for (const auto &[orig, distilled] : dist.addrMap)
        out += strfmt("addr 0x%x 0x%x\n", orig, distilled);
    for (const auto &[orig, mask] : dist.checkpointRegs)
        out += strfmt("ckpt 0x%x 0x%x\n", orig, mask);
    for (const auto &[pc, cls] : dist.loadClasses) {
        out += strfmt("specload 0x%x %s\n", pc,
                      loadSpecClassName(cls));
    }
    // Plan lines persist in rank order — the order is part of the
    // contract mssp-lint --plan validates.
    for (const SpecPlanEntry &p : dist.specPlan) {
        out += strfmt("specplan 0x%x %s 0x%x %llu ", p.pc,
                      valueProofName(p.proof), p.value,
                      static_cast<unsigned long long>(
                          p.benefitMicro));
        for (size_t i = 0; i < p.feasible.size(); ++i)
            out += strfmt("%s0x%x", i ? "," : "", p.feasible[i]);
        out += "\n";
    }
    // Speculated-edit records, in bake order (plan rank order).
    for (const SpecEdit &e : dist.specEdits) {
        out += strfmt("specedit 0x%x 0x%x %u 0x%x %s 0x%x %llu ",
                      e.origPc, e.distPc, e.reg, e.addr,
                      valueProofName(e.proof), e.value,
                      static_cast<unsigned long long>(
                          e.benefitMicro));
        if (e.policedBy.empty()) {
            out += "-";
        } else {
            for (size_t i = 0; i < e.policedBy.size(); ++i)
                out += strfmt("%s0x%x", i ? "," : "", e.policedBy[i]);
        }
        out += "\n";
    }
    for (uint32_t pc : dist.specDropped)
        out += strfmt("specdrop 0x%x\n", pc);
    out += strfmt("specgen %u\n", dist.specGeneration);
    for (const DistillEdit &e : dist.report.edits) {
        out += strfmt("edit %s 0x%x %u %u 0x%x 0x%x 0x%x\n",
                      distillPassName(e.pass), e.origPc, e.reg,
                      e.hasValue ? 1 : 0, e.value, e.regionStart,
                      e.liveOut);
    }
    const DistillReport &r = dist.report;
    out += strfmt("report %zu %zu %llu %llu %llu %llu %llu %llu %llu "
                  "%zu\n",
                  r.origStaticInsts, r.distilledStaticInsts,
                  static_cast<unsigned long long>(r.branchesToJump),
                  static_cast<unsigned long long>(r.branchesToFall),
                  static_cast<unsigned long long>(r.blocksRemoved),
                  static_cast<unsigned long long>(r.constFolded),
                  static_cast<unsigned long long>(r.dceRemoved),
                  static_cast<unsigned long long>(r.storesElided),
                  static_cast<unsigned long long>(r.loadsValueSpeced),
                  r.forkSites);
    return out;
}

DistilledProgram
loadDistilled(const std::string &text)
{
    DistilledProgram dist;
    auto extra = [&](const auto &toks, int line_no,
                     auto &want_int) -> bool {
        std::string_view key = toks[0];
        if (key == "fork" && toks.size() == 4) {
            size_t idx = want_int(toks[1], line_no);
            // Bound the resize below: an untrusted index must not be
            // able to force a multi-gigabyte allocation.
            if (idx > kMaxForkIndex) {
                fatal("object line %d: fork index %zu exceeds cap %zu",
                      line_no, idx, kMaxForkIndex);
            }
            if (idx >= dist.taskMap.size()) {
                dist.taskMap.resize(idx + 1);
                dist.taskIntervals.resize(idx + 1, 1);
            }
            dist.taskMap[idx] = want_int(toks[2], line_no);
            dist.taskIntervals[idx] = want_int(toks[3], line_no);
            return true;
        }
        if (key == "restart" && toks.size() == 3) {
            dist.entryMap[want_int(toks[1], line_no)] =
                want_int(toks[2], line_no);
            return true;
        }
        if (key == "addr" && toks.size() == 3) {
            dist.addrMap[want_int(toks[1], line_no)] =
                want_int(toks[2], line_no);
            return true;
        }
        if (key == "ckpt" && toks.size() == 3) {
            dist.checkpointRegs[want_int(toks[1], line_no)] =
                want_int(toks[2], line_no);
            return true;
        }
        if (key == "specload" && toks.size() == 3) {
            LoadSpecClass cls;
            if (!loadSpecClassFromName(std::string(toks[2]), cls)) {
                fatal("object line %d: unknown load class '%s'",
                      line_no, std::string(toks[2]).c_str());
            }
            dist.loadClasses[want_int(toks[1], line_no)] = cls;
            return true;
        }
        if (key == "specplan" && toks.size() == 6) {
            SpecPlanEntry p;
            p.pc = want_int(toks[1], line_no);
            if (!valueProofFromName(std::string(toks[2]), p.proof)) {
                fatal("object line %d: unknown proof class '%s'",
                      line_no, std::string(toks[2]).c_str());
            }
            p.value = want_int(toks[3], line_no);
            int64_t micro;   // 64-bit: want_int truncates to uint32
            if (!parseInt(toks[4], micro) || micro < 0) {
                fatal("object line %d: bad benefit '%s'", line_no,
                      std::string(toks[4]).c_str());
            }
            p.benefitMicro = static_cast<uint64_t>(micro);
            for (std::string_view v : split(toks[5], ','))
                p.feasible.push_back(want_int(v, line_no));
            dist.specPlan.push_back(std::move(p));
            return true;
        }
        if (key == "specedit" && toks.size() == 9) {
            SpecEdit e;
            e.origPc = want_int(toks[1], line_no);
            e.distPc = want_int(toks[2], line_no);
            e.reg = static_cast<uint8_t>(want_int(toks[3], line_no));
            e.addr = want_int(toks[4], line_no);
            if (!valueProofFromName(std::string(toks[5]), e.proof)) {
                fatal("object line %d: unknown proof class '%s'",
                      line_no, std::string(toks[5]).c_str());
            }
            e.value = want_int(toks[6], line_no);
            int64_t micro;   // 64-bit: want_int truncates to uint32
            if (!parseInt(toks[7], micro) || micro < 0) {
                fatal("object line %d: bad benefit '%s'", line_no,
                      std::string(toks[7]).c_str());
            }
            e.benefitMicro = static_cast<uint64_t>(micro);
            if (toks[8] != "-") {
                for (std::string_view v : split(toks[8], ','))
                    e.policedBy.push_back(want_int(v, line_no));
            }
            dist.specEdits.push_back(std::move(e));
            return true;
        }
        if (key == "specdrop" && toks.size() == 2) {
            dist.specDropped.push_back(want_int(toks[1], line_no));
            return true;
        }
        if (key == "specgen" && toks.size() == 2) {
            dist.specGeneration = want_int(toks[1], line_no);
            return true;
        }
        if (key == "edit" && toks.size() == 8) {
            DistillEdit e;
            if (!distillPassFromName(std::string(toks[1]), e.pass)) {
                fatal("object line %d: unknown pass '%s'", line_no,
                      std::string(toks[1]).c_str());
            }
            e.origPc = want_int(toks[2], line_no);
            e.reg = static_cast<uint8_t>(want_int(toks[3], line_no));
            e.hasValue = want_int(toks[4], line_no) != 0;
            e.value = want_int(toks[5], line_no);
            e.regionStart = want_int(toks[6], line_no);
            e.liveOut = want_int(toks[7], line_no);
            dist.report.edits.push_back(e);
            return true;
        }
        if (key == "report" && toks.size() == 11) {
            DistillReport &r = dist.report;
            r.origStaticInsts = want_int(toks[1], line_no);
            r.distilledStaticInsts = want_int(toks[2], line_no);
            r.branchesToJump = want_int(toks[3], line_no);
            r.branchesToFall = want_int(toks[4], line_no);
            r.blocksRemoved = want_int(toks[5], line_no);
            r.constFolded = want_int(toks[6], line_no);
            r.dceRemoved = want_int(toks[7], line_no);
            r.storesElided = want_int(toks[8], line_no);
            r.loadsValueSpeced = want_int(toks[9], line_no);
            r.forkSites = want_int(toks[10], line_no);
            return true;
        }
        return false;
    };
    parseLines(text, kDistilledMagic, dist.prog, extra);
    return dist;
}

Result<Program>
parseProgram(const std::string &text)
{
    try {
        return loadProgram(text);
    } catch (const FatalError &e) {
        return Status(StatusCode::ParseError, e.what());
    } catch (const std::exception &e) {
        return Status(StatusCode::ParseError, e.what());
    }
}

Result<DistilledProgram>
parseDistilled(const std::string &text)
{
    try {
        return loadDistilled(text);
    } catch (const FatalError &e) {
        return Status(StatusCode::ParseError, e.what());
    } catch (const std::exception &e) {
        return Status(StatusCode::ParseError, e.what());
    }
}

} // namespace mssp

#include "asm/program.hh"

#include "isa/disasm.hh"
#include "sim/logging.hh"

namespace mssp
{

std::string
Program::disassembleRange(uint32_t start, uint32_t count) const
{
    std::string out;
    for (uint32_t pc = start; pc < start + count; ++pc) {
        out += strfmt("0x%06x:  %s\n", pc,
                      disassembleWord(word(pc), pc).c_str());
    }
    return out;
}

} // namespace mssp

#include "asm/assembler.hh"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "isa/isa.hh"
#include "sim/logging.hh"
#include "util/bitfield.hh"
#include "util/string_utils.hh"

namespace mssp
{

namespace
{

/** One source statement after comment/label stripping. */
struct Statement
{
    int line = 0;
    std::string mnemonic;            // lower-case op or ".directive"
    std::vector<std::string> operands;
};

/** Assembly context shared between the two passes. */
struct AsmContext
{
    Program prog;
    std::map<std::string, uint32_t> constants;  // .equ values
    uint32_t locationCounter = DefaultCodeBase;
    bool sawOrg = false;
    bool entrySet = false;
    std::string entryLabel;
    int entryLine = 0;
};

[[noreturn]] void
asmError(int line, const std::string &msg)
{
    fatal("line %d: %s", line, msg.c_str());
}

/** Strip a trailing comment starting with ';', '#' or "//". */
std::string_view
stripComment(std::string_view s)
{
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] == ';' || s[i] == '#')
            return s.substr(0, i);
        if (s[i] == '/' && i + 1 < s.size() && s[i + 1] == '/')
            return s.substr(0, i);
    }
    return s;
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
}

bool
isIdentifier(std::string_view s)
{
    if (s.empty())
        return false;
    if (std::isdigit(static_cast<unsigned char>(s[0])))
        return false;
    for (char c : s) {
        if (!isIdentChar(c))
            return false;
    }
    return true;
}

/** Split an operand list on commas, trimming each piece. */
std::vector<std::string>
splitOperands(std::string_view s)
{
    std::vector<std::string> out;
    s = trim(s);
    if (s.empty())
        return out;
    for (auto piece : split(s, ','))
        out.emplace_back(trim(piece));
    return out;
}

/** Parse source text into labeled statements; labels are resolved in
 *  pass 1, so this stage records them as pseudo-statements. */
std::vector<Statement>
parse(const std::string &source)
{
    std::vector<Statement> stmts;
    int line_no = 0;
    for (auto raw_line : split(source, '\n')) {
        ++line_no;
        std::string_view body = trim(stripComment(raw_line));
        // Peel off any number of leading "label:" definitions.
        while (true) {
            size_t colon = body.find(':');
            if (colon == std::string_view::npos)
                break;
            std::string_view label = trim(body.substr(0, colon));
            if (!isIdentifier(label))
                break;
            Statement s;
            s.line = line_no;
            s.mnemonic = ":label";
            s.operands.emplace_back(label);
            stmts.push_back(std::move(s));
            body = trim(body.substr(colon + 1));
        }
        if (body.empty())
            continue;
        // Mnemonic is the first whitespace-delimited token.
        size_t sp = 0;
        while (sp < body.size() &&
               !std::isspace(static_cast<unsigned char>(body[sp]))) {
            ++sp;
        }
        Statement s;
        s.line = line_no;
        s.mnemonic = toLower(body.substr(0, sp));
        s.operands = splitOperands(body.substr(sp));
        stmts.push_back(std::move(s));
    }
    return stmts;
}

/** Resolve a symbol/constant/number expression to a value. */
std::optional<int64_t>
resolveValue(const AsmContext &ctx, const std::string &expr)
{
    int64_t v;
    if (parseInt(expr, v))
        return v;
    auto it = ctx.constants.find(expr);
    if (it != ctx.constants.end())
        return static_cast<int64_t>(it->second);
    uint32_t sym;
    if (ctx.prog.lookupSymbol(expr, sym))
        return static_cast<int64_t>(sym);
    return std::nullopt;
}

int64_t
requireValue(const AsmContext &ctx, const Statement &st,
             const std::string &expr)
{
    auto v = resolveValue(ctx, expr);
    if (!v) {
        asmError(st.line,
                 strfmt("undefined symbol or bad literal '%s'",
                        expr.c_str()));
    }
    return *v;
}

uint8_t
requireReg(const Statement &st, const std::string &name)
{
    int r = regFromName(toLower(name));
    if (r < 0)
        asmError(st.line, strfmt("unknown register '%s'", name.c_str()));
    return static_cast<uint8_t>(r);
}

/** Parse a memory operand "off(reg)"; off may be a symbol/constant. */
void
parseMemOperand(const AsmContext &ctx, const Statement &st,
                const std::string &operand, uint8_t &base, int32_t &off)
{
    size_t lp = operand.find('(');
    size_t rp = operand.rfind(')');
    if (lp == std::string::npos || rp == std::string::npos || rp < lp)
        asmError(st.line, strfmt("bad memory operand '%s'",
                                 operand.c_str()));
    std::string off_str(trim(std::string_view(operand).substr(0, lp)));
    std::string reg_str(trim(std::string_view(operand)
                                 .substr(lp + 1, rp - lp - 1)));
    base = requireReg(st, reg_str);
    if (off_str.empty()) {
        off = 0;
    } else {
        int64_t v = requireValue(ctx, st, off_str);
        if (!fitsSigned(v, 16)) {
            asmError(st.line, strfmt("offset %lld out of range",
                                     static_cast<long long>(v)));
        }
        off = static_cast<int32_t>(v);
    }
}

void
requireOperands(const Statement &st, size_t n)
{
    if (st.operands.size() != n) {
        asmError(st.line,
                 strfmt("'%s' expects %zu operands, got %zu",
                        st.mnemonic.c_str(), n, st.operands.size()));
    }
}

/** Number of encoded words a statement will occupy (pass 1). */
uint32_t
statementSize(const AsmContext &ctx, const Statement &st)
{
    const std::string &m = st.mnemonic;
    if (m == ":label" || m == ".org" || m == ".equ" || m == ".entry")
        return 0;
    if (m == ".word")
        return static_cast<uint32_t>(st.operands.size());
    if (m == ".space") {
        if (st.operands.size() != 1)
            asmError(st.line, ".space expects one operand");
        int64_t n = requireValue(ctx, st, st.operands[0]);
        if (n < 0)
            asmError(st.line, ".space size must be nonnegative");
        return static_cast<uint32_t>(n);
    }
    if (m == "li") {
        // Size depends on the constant. Only pure numeric literals may
        // shrink to one word; symbols and .equ constants always take
        // two so pass-1 sizing never depends on definition order.
        if (st.operands.size() != 2)
            asmError(st.line, "li expects 2 operands");
        int64_t v;
        if (parseInt(st.operands[1], v)) {
            uint32_t uv = static_cast<uint32_t>(v);
            if (fitsSigned(v, 16) || (uv & 0xffffu) == 0)
                return 1;
        }
        return 2;
    }
    if (m == "la")
        return 2;
    return 1;   // every other mnemonic encodes to exactly one word
}

/** Emit one encoded instruction at the location counter. */
void
emit(AsmContext &ctx, const Instruction &inst)
{
    ctx.prog.setWord(ctx.locationCounter++, encode(inst));
}

int32_t
branchOffset(const AsmContext &ctx, const Statement &st,
             const std::string &target)
{
    int64_t tgt = requireValue(ctx, st, target);
    int64_t off = tgt - (static_cast<int64_t>(ctx.locationCounter) + 1);
    if (!fitsSigned(off, 16)) {
        asmError(st.line, strfmt("branch target out of range (%lld)",
                                 static_cast<long long>(off)));
    }
    return static_cast<int32_t>(off);
}

int32_t
jumpOffset(const AsmContext &ctx, const Statement &st,
           const std::string &target)
{
    int64_t tgt = requireValue(ctx, st, target);
    int64_t off = tgt - (static_cast<int64_t>(ctx.locationCounter) + 1);
    if (!fitsSigned(off, 21)) {
        asmError(st.line, strfmt("jump target out of range (%lld)",
                                 static_cast<long long>(off)));
    }
    return static_cast<int32_t>(off);
}

/** Emit `li rd, value` as one or two instructions. */
void
emitLoadImm(AsmContext &ctx, uint8_t rd, uint32_t value,
            bool force_two_words)
{
    int32_t sval = static_cast<int32_t>(value);
    if (!force_two_words && fitsSigned(sval, 16)) {
        emit(ctx, makeI(Opcode::Addi, rd, reg::Zero, sval));
        return;
    }
    if (!force_two_words && (value & 0xffffu) == 0) {
        emit(ctx, makeI(Opcode::Lui, rd, 0,
                        static_cast<int32_t>(value >> 16)));
        return;
    }
    emit(ctx, makeI(Opcode::Lui, rd, 0,
                    static_cast<int32_t>(value >> 16)));
    emit(ctx, makeI(Opcode::Ori, rd, rd,
                    static_cast<int32_t>(value & 0xffffu)));
}

/** Pass 2: encode a single statement. */
void
encodeStatement(AsmContext &ctx, const Statement &st)
{
    const std::string &m = st.mnemonic;

    // Directives ---------------------------------------------------------
    if (m == ":label" || m == ".equ" || m == ".entry")
        return;     // handled in pass 1
    if (m == ".org") {
        requireOperands(st, 1);
        ctx.locationCounter = static_cast<uint32_t>(
            requireValue(ctx, st, st.operands[0]));
        return;
    }
    if (m == ".word") {
        for (const auto &operand : st.operands) {
            ctx.prog.setWord(ctx.locationCounter++,
                static_cast<uint32_t>(requireValue(ctx, st, operand)));
        }
        return;
    }
    if (m == ".space") {
        ctx.locationCounter += static_cast<uint32_t>(
            requireValue(ctx, st, st.operands[0]));
        return;
    }
    if (m[0] == '.')
        asmError(st.line, strfmt("unknown directive '%s'", m.c_str()));

    // Pseudo-instructions --------------------------------------------------
    if (m == "li" || m == "la") {
        requireOperands(st, 2);
        uint8_t rd = requireReg(st, st.operands[0]);
        uint32_t value = static_cast<uint32_t>(
            requireValue(ctx, st, st.operands[1]));
        // Size must match pass 1: anything but a pure numeric literal
        // forces two words.
        int64_t dummy;
        bool is_literal = parseInt(st.operands[1], dummy);
        emitLoadImm(ctx, rd, value, m == "la" || !is_literal);
        return;
    }
    if (m == "mv") {
        requireOperands(st, 2);
        emit(ctx, makeI(Opcode::Addi, requireReg(st, st.operands[0]),
                        requireReg(st, st.operands[1]), 0));
        return;
    }
    if (m == "neg") {
        requireOperands(st, 2);
        emit(ctx, makeR(Opcode::Sub, requireReg(st, st.operands[0]),
                        reg::Zero, requireReg(st, st.operands[1])));
        return;
    }
    if (m == "subi") {
        requireOperands(st, 3);
        int64_t v = requireValue(ctx, st, st.operands[2]);
        emit(ctx, makeI(Opcode::Addi, requireReg(st, st.operands[0]),
                        requireReg(st, st.operands[1]),
                        static_cast<int32_t>(-v)));
        return;
    }
    if (m == "j") {
        requireOperands(st, 1);
        emit(ctx, makeJ(Opcode::Jal, reg::Zero,
                        jumpOffset(ctx, st, st.operands[0])));
        return;
    }
    if (m == "call") {
        requireOperands(st, 1);
        emit(ctx, makeJ(Opcode::Jal, reg::Ra,
                        jumpOffset(ctx, st, st.operands[0])));
        return;
    }
    if (m == "ret") {
        requireOperands(st, 0);
        emit(ctx, makeI(Opcode::Jalr, reg::Zero, reg::Ra, 0));
        return;
    }
    if (m == "beqz" || m == "bnez") {
        requireOperands(st, 2);
        uint8_t rs = requireReg(st, st.operands[0]);
        int32_t off = branchOffset(ctx, st, st.operands[1]);
        emit(ctx, makeB(m == "beqz" ? Opcode::Beq : Opcode::Bne,
                        rs, reg::Zero, off));
        return;
    }
    if (m == "bgt" || m == "ble" || m == "bgtu" || m == "bleu") {
        requireOperands(st, 3);
        uint8_t rs1 = requireReg(st, st.operands[0]);
        uint8_t rs2 = requireReg(st, st.operands[1]);
        int32_t off = branchOffset(ctx, st, st.operands[2]);
        Opcode op = (m == "bgt") ? Opcode::Blt
                  : (m == "ble") ? Opcode::Bge
                  : (m == "bgtu") ? Opcode::Bltu
                  : Opcode::Bgeu;
        emit(ctx, makeB(op, rs2, rs1, off));    // operands swapped
        return;
    }

    // Native instructions ---------------------------------------------------
    Opcode op = opcodeFromName(m);
    if (op == Opcode::Illegal)
        asmError(st.line, strfmt("unknown mnemonic '%s'", m.c_str()));

    switch (op) {
      case Opcode::Nop:
      case Opcode::Halt:
        requireOperands(st, 0);
        emit(ctx, makeN(op));
        return;
      case Opcode::Lui: {
        requireOperands(st, 2);
        uint8_t rd = requireReg(st, st.operands[0]);
        int64_t v = requireValue(ctx, st, st.operands[1]);
        emit(ctx, makeI(op, rd, 0, static_cast<int32_t>(v)));
        return;
      }
      case Opcode::Lw: {
        requireOperands(st, 2);
        uint8_t rd = requireReg(st, st.operands[0]);
        uint8_t base;
        int32_t off;
        parseMemOperand(ctx, st, st.operands[1], base, off);
        emit(ctx, makeI(op, rd, base, off));
        return;
      }
      case Opcode::Sw: {
        requireOperands(st, 2);
        uint8_t src = requireReg(st, st.operands[0]);
        uint8_t base;
        int32_t off;
        parseMemOperand(ctx, st, st.operands[1], base, off);
        emit(ctx, makeB(op, base, src, off));
        return;
      }
      case Opcode::Out: {
        requireOperands(st, 2);
        uint8_t rs = requireReg(st, st.operands[0]);
        int64_t port = requireValue(ctx, st, st.operands[1]);
        emit(ctx, makeI(op, 0, rs, static_cast<int32_t>(port)));
        return;
      }
      case Opcode::Jal: {
        // Accept both "jal target" (rd = ra) and "jal rd, target".
        if (st.operands.size() == 1) {
            emit(ctx, makeJ(op, reg::Ra,
                            jumpOffset(ctx, st, st.operands[0])));
        } else {
            requireOperands(st, 2);
            emit(ctx, makeJ(op, requireReg(st, st.operands[0]),
                            jumpOffset(ctx, st, st.operands[1])));
        }
        return;
      }
      case Opcode::Jalr: {
        requireOperands(st, 3);
        emit(ctx, makeI(op, requireReg(st, st.operands[0]),
                        requireReg(st, st.operands[1]),
                        static_cast<int32_t>(
                            requireValue(ctx, st, st.operands[2]))));
        return;
      }
      case Opcode::Fork: {
        requireOperands(st, 1);
        emit(ctx, makeJ(op, 0, static_cast<int32_t>(
                            requireValue(ctx, st, st.operands[0]))));
        return;
      }
      default:
        break;
    }

    switch (formatOf(op)) {
      case Format::R: {
        requireOperands(st, 3);
        emit(ctx, makeR(op, requireReg(st, st.operands[0]),
                        requireReg(st, st.operands[1]),
                        requireReg(st, st.operands[2])));
        return;
      }
      case Format::I: {
        requireOperands(st, 3);
        int64_t v = requireValue(ctx, st, st.operands[2]);
        emit(ctx, makeI(op, requireReg(st, st.operands[0]),
                        requireReg(st, st.operands[1]),
                        static_cast<int32_t>(v)));
        return;
      }
      case Format::B: {
        requireOperands(st, 3);
        uint8_t rs1 = requireReg(st, st.operands[0]);
        uint8_t rs2 = requireReg(st, st.operands[1]);
        emit(ctx, makeB(op, rs1, rs2,
                        branchOffset(ctx, st, st.operands[2])));
        return;
      }
      default:
        asmError(st.line, strfmt("cannot encode '%s'", m.c_str()));
    }
}

} // anonymous namespace

Program
assemble(const std::string &source)
{
    std::vector<Statement> stmts = parse(source);
    AsmContext ctx;

    // Pass 1: assign addresses, bind labels and constants.
    bool first_code_seen = false;
    for (const auto &st : stmts) {
        if (st.mnemonic == ":label") {
            ctx.prog.defineSymbol(st.operands[0], ctx.locationCounter);
            continue;
        }
        if (st.mnemonic == ".equ") {
            if (st.operands.size() != 2)
                asmError(st.line, ".equ expects name, value");
            auto v = resolveValue(ctx, st.operands[1]);
            if (!v) {
                asmError(st.line, strfmt("bad .equ value '%s'",
                                         st.operands[1].c_str()));
            }
            ctx.constants[st.operands[0]] =
                static_cast<uint32_t>(*v);
            continue;
        }
        if (st.mnemonic == ".entry") {
            if (st.operands.size() != 1)
                asmError(st.line, ".entry expects one operand");
            ctx.entrySet = true;
            ctx.entryLabel = st.operands[0];
            ctx.entryLine = st.line;
            continue;
        }
        if (st.mnemonic == ".org") {
            if (st.operands.size() != 1)
                asmError(st.line, ".org expects one operand");
            auto v = resolveValue(ctx, st.operands[0]);
            if (!v)
                asmError(st.line, "bad .org address");
            ctx.locationCounter = static_cast<uint32_t>(*v);
            ctx.sawOrg = true;
            continue;
        }
        if (!first_code_seen && st.mnemonic[0] != '.') {
            ctx.prog.setEntry(ctx.locationCounter);
            first_code_seen = true;
        }
        ctx.locationCounter += statementSize(ctx, st);
    }

    // Pass 2: encode.
    ctx.locationCounter = DefaultCodeBase;
    ctx.sawOrg = false;
    for (const auto &st : stmts)
        encodeStatement(ctx, st);

    // Entry point resolution.
    if (ctx.entrySet) {
        Statement fake;
        fake.line = ctx.entryLine;
        ctx.prog.setEntry(static_cast<uint32_t>(
            requireValue(ctx, fake, ctx.entryLabel)));
    } else {
        uint32_t start;
        if (ctx.prog.lookupSymbol("_start", start))
            ctx.prog.setEntry(start);
    }
    return ctx.prog;
}

Result<Program>
parseAssembly(const std::string &source)
{
    try {
        return assemble(source);
    } catch (const FatalError &e) {
        return Status(StatusCode::ParseError, e.what());
    } catch (const std::exception &e) {
        return Status(StatusCode::ParseError, e.what());
    }
}

} // namespace mssp

/**
 * @file
 * The μRISC instruction executor.
 *
 * A single, deterministic implementation of instruction semantics —
 * the formal model's `next : S -> S`. Determinism (two consistent
 * states stepping to consistent states) is what makes MSSP's live-in
 * verification sound, and is property-tested in
 * tests/test_formal_properties.cpp.
 *
 * The semantics live in the function template executeDecodedOn<Ctx>()
 * so that machines whose context type is `final` (SeqMachine, the
 * slaves' TaskContext, the master, the profiler) get fully
 * devirtualized, inlined storage accesses on their hot loops, while
 * the classic virtual-dispatch entry points (stepAt / executeDecoded)
 * remain as the reference path — both run the *same* template body, so
 * there is exactly one implementation of the semantics.
 */

#ifndef MSSP_EXEC_EXECUTOR_HH
#define MSSP_EXEC_EXECUTOR_HH

#include <cstdint>

#include "exec/context.hh"
#include "isa/isa.hh"
#include "sim/logging.hh"

namespace mssp
{

/** Outcome of executing one instruction. */
enum class StepStatus : uint8_t
{
    Ok,        ///< executed; continue at nextPc
    Halted,    ///< HALT executed
    Illegal,   ///< undecodable instruction (fault)
};

/** Result of a single executed instruction. */
struct StepResult
{
    StepStatus status = StepStatus::Ok;
    uint32_t nextPc = 0;
    Instruction inst;      ///< the decoded instruction
    bool branchTaken = false;  ///< valid when inst is a cond branch
};

/**
 * Pure ALU evaluation helper: compute the result of an R- or I-type
 * ALU instruction from operand values. Branches/memory/jumps are not
 * accepted. Inline: this runs once per simulated ALU instruction on
 * every machine's hot loop.
 *
 * @retval true when @p op is a pure ALU op and @p out was written.
 */
inline bool
evalAlu(Opcode op, uint32_t a, uint32_t b, uint32_t &out)
{
    constexpr uint32_t IntMin = 0x80000000u;
    auto sa = static_cast<int32_t>(a);
    auto sb = static_cast<int32_t>(b);
    switch (op) {
      case Opcode::Add:
      case Opcode::Addi:
        out = a + b;
        return true;
      case Opcode::Sub:
        out = a - b;
        return true;
      case Opcode::Mul:
        out = a * b;
        return true;
      case Opcode::Div:
        if (b == 0)
            out = 0xffffffffu;
        else if (a == IntMin && sb == -1)
            out = IntMin;
        else
            out = static_cast<uint32_t>(sa / sb);
        return true;
      case Opcode::Rem:
        if (b == 0)
            out = a;
        else if (a == IntMin && sb == -1)
            out = 0;
        else
            out = static_cast<uint32_t>(sa % sb);
        return true;
      case Opcode::And:
      case Opcode::Andi:
        out = a & b;
        return true;
      case Opcode::Or:
      case Opcode::Ori:
        out = a | b;
        return true;
      case Opcode::Xor:
      case Opcode::Xori:
        out = a ^ b;
        return true;
      case Opcode::Sll:
      case Opcode::Slli:
        out = a << (b & 31);
        return true;
      case Opcode::Srl:
      case Opcode::Srli:
        out = a >> (b & 31);
        return true;
      case Opcode::Sra:
      case Opcode::Srai:
        out = static_cast<uint32_t>(sa >> (b & 31));
        return true;
      case Opcode::Slt:
      case Opcode::Slti:
        out = sa < sb ? 1 : 0;
        return true;
      case Opcode::Sltu:
      case Opcode::Sltiu:
        out = a < b ? 1 : 0;
        return true;
      case Opcode::Lui:
        out = (b & 0xffffu) << 16;
        return true;
      default:
        return false;
    }
}

namespace exec_detail
{

/** Read a register honoring the r0-is-zero rule. */
template <class Ctx>
inline uint32_t
rread(Ctx &ctx, unsigned r)
{
    return r == 0 ? 0 : ctx.readReg(r);
}

/** Write a register honoring the r0-is-zero rule. */
template <class Ctx>
inline void
rwrite(Ctx &ctx, unsigned r, uint32_t v)
{
    if (r != 0)
        ctx.writeReg(r, v);
}

/** Prepare the immediate operand for an I-type ALU op: logical ops
 *  zero-extend (MIPS-style), the rest use the sign-extended value. */
inline uint32_t
immOperand(Opcode op, int32_t imm)
{
    switch (op) {
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
        return static_cast<uint32_t>(imm) & 0xffffu;
      default:
        return static_cast<uint32_t>(imm);
    }
}

} // namespace exec_detail

/**
 * Execute an already-decoded instruction against any context type.
 * When @p Ctx is a `final` class the storage accesses devirtualize;
 * with Ctx = ExecContext this *is* the reference implementation.
 *
 * hot + aligned: this dispatch body is the simulator's innermost
 * function for every machine; pinning it into .text.hot at a fixed
 * 64-byte boundary keeps its fetch alignment independent of how the
 * surrounding objects grow (its throughput measurably swings with
 * link-order luck otherwise — see BENCH_simspeed.json).
 */
template <class Ctx>
__attribute__((hot, aligned(64))) StepResult
executeDecodedOn(uint32_t pc, const Instruction &inst, Ctx &ctx)
{
    using exec_detail::immOperand;
    using exec_detail::rread;
    using exec_detail::rwrite;

    StepResult res;
    res.inst = inst;
    res.nextPc = pc + 1;

    switch (inst.op) {
      case Opcode::Illegal:
        res.status = StepStatus::Illegal;
        res.nextPc = pc;
        return res;
      case Opcode::Halt:
        res.status = StepStatus::Halted;
        res.nextPc = pc;
        return res;
      case Opcode::Nop:
        return res;
      case Opcode::Fork:
        ctx.fork(static_cast<uint32_t>(inst.imm));
        return res;
      case Opcode::Lw: {
        uint32_t addr = rread(ctx, inst.rs1) +
                        static_cast<uint32_t>(inst.imm);
        rwrite(ctx, inst.rd, ctx.readMem(addr));
        return res;
      }
      case Opcode::Sw: {
        uint32_t addr = rread(ctx, inst.rs1) +
                        static_cast<uint32_t>(inst.imm);
        ctx.writeMem(addr, rread(ctx, inst.rs2));
        return res;
      }
      case Opcode::Out:
        ctx.output(static_cast<uint16_t>(inst.imm),
                   rread(ctx, inst.rs1));
        return res;
      case Opcode::Jal:
        rwrite(ctx, inst.rd, pc + 1);
        res.nextPc = pc + 1 + static_cast<uint32_t>(inst.imm);
        return res;
      case Opcode::Jalr: {
        uint32_t target = rread(ctx, inst.rs1) +
                          static_cast<uint32_t>(inst.imm);
        rwrite(ctx, inst.rd, pc + 1);
        res.nextPc = target;
        return res;
      }
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
      case Opcode::Bgeu: {
        uint32_t a = rread(ctx, inst.rs1);
        uint32_t b = rread(ctx, inst.rs2);
        auto sa = static_cast<int32_t>(a);
        auto sb = static_cast<int32_t>(b);
        bool taken = false;
        switch (inst.op) {
          case Opcode::Beq:  taken = a == b; break;
          case Opcode::Bne:  taken = a != b; break;
          case Opcode::Blt:  taken = sa < sb; break;
          case Opcode::Bge:  taken = sa >= sb; break;
          case Opcode::Bltu: taken = a < b; break;
          case Opcode::Bgeu: taken = a >= b; break;
          default: panic("unreachable branch opcode");
        }
        res.branchTaken = taken;
        if (taken)
            res.nextPc = pc + 1 + static_cast<uint32_t>(inst.imm);
        return res;
      }
      default:
        break;
    }

    // Remaining opcodes are pure ALU ops (R-type reads rs2, I-type
    // uses the immediate; Add..Sltu are exactly the R-type ALU ops).
    uint32_t a = rread(ctx, inst.rs1);
    uint32_t b;
    if (isRegRegAlu(inst.op))
        b = rread(ctx, inst.rs2);
    else
        b = immOperand(inst.op, inst.imm);

    uint32_t out;
    if (!evalAlu(inst.op, a, b, out)) {
        res.status = StepStatus::Illegal;
        res.nextPc = pc;
        return res;
    }
    rwrite(ctx, inst.rd, out);
    return res;
}

/**
 * Fetch, decode and execute the instruction at @p pc against @p ctx.
 *
 * The executor enforces r0-is-zero (contexts never see register 0).
 * On Halted/Illegal, nextPc == pc (the machine does not advance).
 *
 * This is the reference path: it re-decodes on every step via the
 * virtual fetch. Hot loops use a DecodeCache + executeDecodedOn
 * instead; tests/test_decode_cache.cpp differential-tests the two.
 */
StepResult stepAt(uint32_t pc, ExecContext &ctx);

/**
 * Execute an already-decoded instruction (used by the distiller's
 * constant folder to evaluate ALU ops; @p ctx supplies operands).
 */
StepResult executeDecoded(uint32_t pc, const Instruction &inst,
                          ExecContext &ctx);

} // namespace mssp

#endif // MSSP_EXEC_EXECUTOR_HH

/**
 * @file
 * The μRISC instruction executor.
 *
 * A single, deterministic implementation of instruction semantics —
 * the formal model's `next : S -> S`. Determinism (two consistent
 * states stepping to consistent states) is what makes MSSP's live-in
 * verification sound, and is property-tested in
 * tests/test_formal_properties.cpp.
 */

#ifndef MSSP_EXEC_EXECUTOR_HH
#define MSSP_EXEC_EXECUTOR_HH

#include <cstdint>

#include "exec/context.hh"
#include "isa/isa.hh"

namespace mssp
{

/** Outcome of executing one instruction. */
enum class StepStatus : uint8_t
{
    Ok,        ///< executed; continue at nextPc
    Halted,    ///< HALT executed
    Illegal,   ///< undecodable instruction (fault)
};

/** Result of a single executed instruction. */
struct StepResult
{
    StepStatus status = StepStatus::Ok;
    uint32_t nextPc = 0;
    Instruction inst;      ///< the decoded instruction
    bool branchTaken = false;  ///< valid when inst is a cond branch
};

/**
 * Fetch, decode and execute the instruction at @p pc against @p ctx.
 *
 * The executor enforces r0-is-zero (contexts never see register 0).
 * On Halted/Illegal, nextPc == pc (the machine does not advance).
 */
StepResult stepAt(uint32_t pc, ExecContext &ctx);

/**
 * Execute an already-decoded instruction (used by the distiller's
 * constant folder to evaluate ALU ops; @p ctx supplies operands).
 */
StepResult executeDecoded(uint32_t pc, const Instruction &inst,
                          ExecContext &ctx);

/**
 * Pure ALU evaluation helper: compute the result of an R- or I-type
 * ALU instruction from operand values. Branches/memory/jumps are not
 * accepted.
 *
 * @retval true when @p op is a pure ALU op and @p out was written.
 */
bool evalAlu(Opcode op, uint32_t a, uint32_t b, uint32_t &out);

} // namespace mssp

#endif // MSSP_EXEC_EXECUTOR_HH

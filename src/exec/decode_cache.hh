/**
 * @file
 * Page-granular predecode cache.
 *
 * Every machine in the system used to re-decode its instruction word
 * on every step (stepAt's decode(fetch(pc))). MSSP assumes programs
 * are not self-modifying — the ExecContext fetch contract — so a
 * program image decodes to the same Instruction stream forever, and
 * decoding is a pure function of the image. A DecodeCache exploits
 * that: it is keyed by one immutable code image and lazily fills
 * fixed-size pages of decoded Instructions the first time any PC on
 * the page is fetched. One cache per image is shared by everything
 * that executes it (the MSSP slaves and the sequential fallback share
 * the original image's cache; the master has one for the distilled
 * image; SEQ decodes from its own loaded memory).
 *
 * Words absent from the image decode exactly like zero words
 * (Opcode::Illegal), matching reads of unmapped memory, so the cached
 * path is bit-identical to the reference stepAt path — which remains
 * in place and is differential-tested against this cache over every
 * registry workload (tests/test_decode_cache.cpp).
 */

#ifndef MSSP_EXEC_DECODE_CACHE_HH
#define MSSP_EXEC_DECODE_CACHE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "arch/paged_mem.hh"
#include "asm/program.hh"
#include "isa/isa.hh"

namespace mssp
{

/** Lazily-filled cache of decoded instructions for one code image. */
class DecodeCache
{
  public:
    static constexpr unsigned PageBits = 8;
    static constexpr uint32_t PageWords = 1u << PageBits;
    static constexpr uint32_t OffsetMask = PageWords - 1;

    /** Decode from a Program image. @p prog must outlive the cache
     *  and never change (no self-modifying code — the fetch contract
     *  in exec/context.hh). */
    explicit DecodeCache(const Program &prog) : prog_(&prog) {}

    /** Decode from an already-loaded memory (SEQ's own ArchState
     *  memory). Code words in @p mem must be immutable — the same
     *  fetch contract. */
    explicit DecodeCache(const PagedMem &mem) : mem_(&mem) {}

    DecodeCache(const DecodeCache &) = delete;
    DecodeCache &operator=(const DecodeCache &) = delete;

    /**
     * The decoded instruction at @p pc. Identical to decoding the
     * fetched word; the page is decoded on first touch and a
     * one-entry MRU makes the common straight-line/loop case two
     * loads and a compare.
     */
    const Instruction &
    at(uint32_t pc)
    {
        uint32_t page_num = pc >> PageBits;
        if (page_num != mru_num_ || mru_ == nullptr)
            fillMru(page_num);
        return mru_->insts[pc & OffsetMask];
    }

    /** Number of resident decoded pages (tests/stats). */
    size_t numPages() const { return pages_.size(); }

    /**
     * Drop the decoded page containing @p pc. The one sanctioned use
     * is runtime patching of the *distilled* image (fault injection:
     * the master's private I-space is part of the untrusted
     * prediction surface); original-program images stay immutable
     * under the fetch contract.
     */
    void
    invalidate(uint32_t pc)
    {
        uint32_t page_num = pc >> PageBits;
        pages_.erase(page_num);
        if (mru_num_ == page_num)
            mru_ = nullptr;
        ++version_;
    }

    /**
     * Invalidation epoch: bumped by every invalidate(). Consumers
     * that derive state from decoded instructions (the blockjit
     * tier's compiled superop blocks) compare this against their own
     * snapshot and flush when it moved — a patched instruction must
     * be re-decoded by *every* tier, not just this cache.
     */
    uint64_t version() const { return version_; }

  private:
    struct Page
    {
        // Default Instruction == decode(0) == Illegal: unmapped words
        // behave exactly like the reference path.
        std::array<Instruction, PageWords> insts{};
    };

    /** Look up (or decode) page @p page_num and make it the MRU. */
    void fillMru(uint32_t page_num);

    const Program *prog_ = nullptr;   // exactly one source is set
    const PagedMem *mem_ = nullptr;
    std::unordered_map<uint32_t, std::unique_ptr<Page>> pages_;
    uint32_t mru_num_ = 0;
    Page *mru_ = nullptr;
    uint64_t version_ = 0;
};

} // namespace mssp

#endif // MSSP_EXEC_DECODE_CACHE_HH

/**
 * @file
 * T2 `blockjit`: superinstruction block-compiling engine.
 *
 * The predecode cache's hit counters (kept here, per block leader)
 * pick hot decoded regions; each is "compiled" once into a chain of
 * pre-specialized superinstruction micro-ops:
 *
 *  - the source opcode is baked into the micro-op *kind*, so the
 *    shared evalAlu switch constant-folds away at compile time and
 *    executing e.g. an `add` is just `rd = a + x`,
 *  - every operand is pre-resolved at compile time (immOperand
 *    applied, Out ports and Fork indices extracted), and constant
 *    producers (`lui`, `li`, zero-source ALU ops, `jal` link writes)
 *    fold to a single `rd = c` move,
 *  - unconditional constant jumps (`j`/`jal`) do not end a block:
 *    compilation continues at the target, so the tiny tail blocks
 *    branchy control flow chops code into are merged back into one
 *    superop chain (nInsts still counts every retired source
 *    instruction, including the folded jumps),
 *  - strongly-biased conditional branches do not end a block either:
 *    the deopt interpreter trains a saturating per-branch bias
 *    counter while the region is still cold, and compilation folds
 *    branches that always went one way into *guard* micro-ops — the
 *    block continues down the observed direction and side-exits with
 *    an exact retire count if the branch ever goes the other way
 *    (always architecturally correct; the bias only steers block
 *    shape),
 *  - blocks link directly to their successors: each block caches
 *    Block pointers for both branch directions, and the chain
 *    executor follows them *inside* its dispatch loop — a hot
 *    block-to-block transfer is a handful of ALU ops and one indirect
 *    jump, with no lookup, no function call and no returned exit
 *    record.
 *
 * Deopt rules (DESIGN.md §11): execution falls back to
 * per-instruction stepping (the shared semantic helpers) at cold
 * code, when the remaining retire budget is smaller than a block, and
 * at anything a block cannot contain — faults (Illegal never compiles
 * into a block) and MMIO (device accesses go through the same
 * ctx.readMem/writeMem as every tier, so MMIO *correctness* is the
 * context's; machines that must react per-step, e.g. the slaves'
 * MMIO abort, use hooks and therefore never select T2 — see
 * resolveHookedBackend).
 *
 * Self-modification safety: the cache watches its DecodeCache's
 * version counter and drops every compiled block — and with them all
 * direct links — when the underlying image is invalidated
 * (fault-injection image patches).
 */

#ifndef MSSP_EXEC_BLOCKJIT_HH
#define MSSP_EXEC_BLOCKJIT_HH

#include <array>
#include <concepts>
#include <memory>
#include <unordered_map>
#include <vector>

#include "exec/backend.hh"
#include "exec/threaded.hh"

namespace mssp
{

namespace exec_detail
{

/** Contexts exposing raw register storage (ArchState::rawRegs):
 *  storage slot 0 is pinned to zero, so trusted loops may read it
 *  unguarded and skip the write guard for known-nonzero
 *  destinations. */
template <class Ctx>
inline constexpr bool kHasRawRegs =
    requires(Ctx &c) { { c.rawRegs() } -> std::same_as<uint32_t *>; };

} // namespace exec_detail

/** Per-DecodeCache block compiler + block cache. */
class BlockJit
{
  public:
    /** Compile a leader once its hit counter reaches this. */
    static constexpr uint32_t HotThreshold = 8;
    /** Cap block length (retired instructions per block). */
    static constexpr uint32_t MaxBlockInsts = 64;
    /** Saturation bound of the per-branch bias counters. */
    static constexpr int8_t BiasMax = 8;
    /** |bias| needed before a branch folds into a guard. */
    static constexpr int8_t GuardBias = 6;

    explicit BlockJit(DecodeCache &dc) : dc_(&dc) {}

    BlockJit(const BlockJit &) = delete;
    BlockJit &operator=(const BlockJit &) = delete;

    /** Engine entry point; same contract as runRefEngine (hookless —
     *  hooked consumers resolve to T1 before getting here). */
    template <class Ctx>
    EngineResult run(uint32_t pc, uint64_t max_steps, Ctx &ctx);

    // -- stats (tests / debugging) --------------------------------------
    size_t numBlocks() const { return blocks_.size(); }
    uint64_t blocksEntered() const { return blocks_entered_; }
    uint64_t instsInBlocks() const { return insts_in_blocks_; }

  private:
    /**
     * Micro-op kinds. The source opcode is encoded in the kind so
     * every handler runs with a compile-time-constant operation.
     * Order is load-bearing: End must stay first so a default MicroOp
     * terminates a body, Add..Sltu and AddC..SraC mirror the Opcode
     * enum's R-type and I-type ALU groups (static_asserts in
     * blockjit.cc pin the offsets), and the computed-goto tables in
     * execChain are indexed by these values.
     */
    enum class MKind : uint8_t
    {
        End,    ///< body sentinel: proceed to the terminator
        Const,  ///< rd = c  (lui / li / folded constants / jal links)
        Lw,     ///< rd = mem[r(ra) + c]
        Sw,     ///< mem[r(ra) + c] = r(rb)
        OutP,   ///< output port c <- r(ra)
        ForkT,  ///< ctx.fork(c)
        // R-type ALU, x = r(rb): mirrors Opcode Add..Sltu.
        Add, Sub, Mul, Div, Rem, And, Or, Xor, Sll, Srl, Sra, Slt,
        Sltu,
        // I-type ALU, x = c (immOperand pre-applied): mirrors Opcode
        // Addi..Srai.
        AddC, AndC, OrC, XorC, SltC, SltuC, SllC, SrlC, SraC,
        // Folded-branch guards (both groups mirror Opcode Beq..Bgeu).
        // GT*: the block continues on the taken path, exits to c (the
        // fall-through pc) otherwise. GF*: continues on fall-through,
        // exits to c (the taken pc). rd holds the exact retire count
        // up to and including the guarded branch.
        GTbeq, GTbne, GTblt, GTbge, GTbltu, GTbgeu,
        GFbeq, GFbne, GFblt, GFbge, GFbltu, GFbgeu,
    };
    static constexpr size_t NumMKinds =
        static_cast<size_t>(MKind::GFbgeu) + 1;

    /** One pre-specialized superinstruction (8 bytes). */
    struct MicroOp
    {
        MKind kind = MKind::End;
        uint8_t rd = 0, ra = 0, rb = 0;
        uint32_t c = 0;
    };

    /** Terminator kinds; Beq..Bgeu mirror the Opcode branch group. */
    enum class TKind : uint8_t
    {
        Beq, Bne, Blt, Bge, Bltu, Bgeu,
        JumpReg,      ///< jalr: link rd = c, target r(ra) + imm
        HaltT,        ///< halt instruction (pc pinned at fallPc)
        FallThrough,  ///< block cap / stops short of a fault
    };
    static constexpr size_t NumTKinds =
        static_cast<size_t>(TKind::FallThrough) + 1;

    struct Terminator
    {
        TKind kind = TKind::FallThrough;
        uint8_t ra = 0, rb = 0, rd = 0;
        uint32_t takenPc = 0;  ///< branch taken target
        uint32_t fallPc = 0;   ///< fall-through / halt / cap pc
        uint32_t imm = 0;      ///< jalr displacement
        uint32_t c = 0;        ///< jalr link value (pc + 1)
    };

    struct Block
    {
        uint32_t start = 0;
        uint32_t nInsts = 0;  ///< 0 marks an uncompilable leader
        std::vector<MicroOp> body;  ///< always End-terminated
        Terminator term;
        // Direct successor links, resolved lazily from the block
        // cache (null until the successor compiles). Block pointers
        // are stable (node-based map); the links die with the blocks
        // on every invalidation flush.
        Block *takenLink = nullptr;
        Block *fallLink = nullptr;
    };

    /** Where a chain of linked blocks stopped. */
    struct ChainResult
    {
        uint32_t pc = 0;
        bool halted = false;
        uint64_t retired = 0;  ///< insts retired across the chain
        uint64_t entered = 0;  ///< blocks entered across the chain
    };

    static constexpr unsigned DmapBits = 10;
    struct Slot
    {
        uint32_t tag = 0xffffffffu;
        Block *block = nullptr;
    };

    size_t slotFor(uint32_t pc) const
    {
        return (pc * 2654435761u) >> (32 - DmapBits);
    }

    /** Drop all compiled state when the decode cache was invalidated
     *  (image patch): stale superops must never execute. */
    void
    syncVersion()
    {
        if (version_ != dc_->version()) {
            blocks_.clear();
            heat_.clear();
            bias_.clear();
            dmap_.fill(Slot{});
            version_ = dc_->version();
        }
    }

    Block *
    lookup(uint32_t pc)
    {
        Slot &s = dmap_[slotFor(pc)];
        if (s.tag == pc)
            return s.block;
        auto it = blocks_.find(pc);
        if (it == blocks_.end() || it->second->nInsts == 0)
            return nullptr;
        s.tag = pc;
        s.block = it->second.get();
        return s.block;
    }

    /** Count a leader hit; compile when hot. @return the block when
     *  one is (now) available. */
    Block *
    train(uint32_t pc)
    {
        if (blocks_.count(pc))
            return lookup(pc);
        uint32_t &h = heat_[pc];
        if (++h < HotThreshold)
            return nullptr;
        compile(pc);
        return lookup(pc);
    }

    void compile(uint32_t leader);

    /** Deopt-path branch observation: saturating taken/not-taken
     *  counter per branch pc, read by compile() to decide guard
     *  folding. Pure heuristic — never affects architectural state. */
    void
    observeBranch(uint32_t pc, bool taken)
    {
        int8_t &bc = bias_[pc];
        if (taken) {
            if (bc < BiasMax)
                ++bc;
        } else {
            if (bc > -BiasMax)
                --bc;
        }
    }

    template <class Ctx>
    static bool applyMicro(const MicroOp &m, Ctx &ctx);

    template <class Ctx>
    ChainResult execChain(Block *b, Ctx &ctx, uint64_t budget);

    DecodeCache *dc_;
    uint64_t version_ = ~0ull;  ///< forces initial sync
    std::unordered_map<uint32_t, std::unique_ptr<Block>> blocks_;
    std::unordered_map<uint32_t, uint32_t> heat_;
    std::unordered_map<uint32_t, int8_t> bias_;
    std::array<Slot, 1u << DmapBits> dmap_{};
    uint64_t blocks_entered_ = 0;
    uint64_t insts_in_blocks_ = 0;
};

/** Portable micro-op interpreter: the no-computed-goto execChain body
 *  (and the readable statement of what each kind does).
 *  @return false when a guard side-exits (the exit pc and retire
 *  count come from the micro-op's c/rd fields). */
template <class Ctx>
inline bool
BlockJit::applyMicro(const MicroOp &m, Ctx &ctx)
{
    using exec_detail::rread;
    using exec_detail::rwrite;

    auto alu = [&](Opcode op, uint32_t x) {
        uint32_t a = rread(ctx, m.ra);
        uint32_t o = 0;
        evalAlu(op, a, x, o);
        rwrite(ctx, m.rd, o);
    };
    auto guard = [&](Opcode op) {
        uint32_t a = rread(ctx, m.ra);
        uint32_t x = rread(ctx, m.rb);
        auto sa = static_cast<int32_t>(a);
        auto sx = static_cast<int32_t>(x);
        switch (op) {
          case Opcode::Beq:  return a == x;
          case Opcode::Bne:  return a != x;
          case Opcode::Blt:  return sa < sx;
          case Opcode::Bge:  return sa >= sx;
          case Opcode::Bltu: return a < x;
          case Opcode::Bgeu: return a >= x;
          default: panic("blockjit: bad guard opcode");
        }
    };

    switch (m.kind) {
      case MKind::Const:
        rwrite(ctx, m.rd, m.c);
        break;
      case MKind::Lw:
        rwrite(ctx, m.rd, ctx.readMem(rread(ctx, m.ra) + m.c));
        break;
      case MKind::Sw:
        ctx.writeMem(rread(ctx, m.ra) + m.c, rread(ctx, m.rb));
        break;
      case MKind::OutP:
        ctx.output(static_cast<uint16_t>(m.c), rread(ctx, m.ra));
        break;
      case MKind::ForkT:
        ctx.fork(m.c);
        break;
      case MKind::Add:  alu(Opcode::Add, rread(ctx, m.rb)); break;
      case MKind::Sub:  alu(Opcode::Sub, rread(ctx, m.rb)); break;
      case MKind::Mul:  alu(Opcode::Mul, rread(ctx, m.rb)); break;
      case MKind::Div:  alu(Opcode::Div, rread(ctx, m.rb)); break;
      case MKind::Rem:  alu(Opcode::Rem, rread(ctx, m.rb)); break;
      case MKind::And:  alu(Opcode::And, rread(ctx, m.rb)); break;
      case MKind::Or:   alu(Opcode::Or, rread(ctx, m.rb)); break;
      case MKind::Xor:  alu(Opcode::Xor, rread(ctx, m.rb)); break;
      case MKind::Sll:  alu(Opcode::Sll, rread(ctx, m.rb)); break;
      case MKind::Srl:  alu(Opcode::Srl, rread(ctx, m.rb)); break;
      case MKind::Sra:  alu(Opcode::Sra, rread(ctx, m.rb)); break;
      case MKind::Slt:  alu(Opcode::Slt, rread(ctx, m.rb)); break;
      case MKind::Sltu: alu(Opcode::Sltu, rread(ctx, m.rb)); break;
      case MKind::AddC:  alu(Opcode::Add, m.c); break;
      case MKind::AndC:  alu(Opcode::And, m.c); break;
      case MKind::OrC:   alu(Opcode::Or, m.c); break;
      case MKind::XorC:  alu(Opcode::Xor, m.c); break;
      case MKind::SltC:  alu(Opcode::Slt, m.c); break;
      case MKind::SltuC: alu(Opcode::Sltu, m.c); break;
      case MKind::SllC:  alu(Opcode::Sll, m.c); break;
      case MKind::SrlC:  alu(Opcode::Srl, m.c); break;
      case MKind::SraC:  alu(Opcode::Sra, m.c); break;
      case MKind::GTbeq:  return guard(Opcode::Beq);
      case MKind::GTbne:  return guard(Opcode::Bne);
      case MKind::GTblt:  return guard(Opcode::Blt);
      case MKind::GTbge:  return guard(Opcode::Bge);
      case MKind::GTbltu: return guard(Opcode::Bltu);
      case MKind::GTbgeu: return guard(Opcode::Bgeu);
      case MKind::GFbeq:  return !guard(Opcode::Beq);
      case MKind::GFbne:  return !guard(Opcode::Bne);
      case MKind::GFblt:  return !guard(Opcode::Blt);
      case MKind::GFbge:  return !guard(Opcode::Bge);
      case MKind::GFbltu: return !guard(Opcode::Bltu);
      case MKind::GFbgeu: return !guard(Opcode::Bgeu);
      case MKind::End:
        break;
    }
    return true;
}

/**
 * Execute the chain of linked blocks starting at @p b until a cold
 * edge, an exhausted budget, a guard side-exit, a jalr to an
 * uncompiled target, or halt. Precondition: b->nInsts <= budget.
 * Every block is entered only while the remaining budget covers it
 * whole (a guard side-exit may retire less than nInsts, never more),
 * and every block retires at least one instruction, so the chain
 * always terminates.
 */
template <class Ctx>
inline BlockJit::ChainResult
BlockJit::execChain(Block *b, Ctx &ctx, uint64_t budget)
{
    using exec_detail::rread;
    using exec_detail::rwrite;

    uint64_t done = 0;     // insts retired by completed blocks
    uint64_t entered = 1;  // blocks entered (counting this one)
    uint32_t next_pc = 0;
    Block **slot = nullptr;

#if MSSP_HAS_COMPUTED_GOTO

    // Register accessors. Contexts with raw register storage skip
    // the r0 guards: reads of slot 0 see the pinned zero, and
    // compile() never emits an ALU/Const write to r0 (rsetNZ);
    // destinations that may legally be r0 (loads, jalr links) go
    // through rset, which keeps the guard.
    auto rget = [&](unsigned r) -> uint32_t {
        if constexpr (exec_detail::kHasRawRegs<Ctx>)
            return ctx.rawRegs()[r];
        else
            return rread(ctx, r);
    };
    auto rsetNZ = [&](unsigned r, uint32_t v) {
        if constexpr (exec_detail::kHasRawRegs<Ctx>)
            ctx.rawRegs()[r] = v;
        else
            rwrite(ctx, r, v);
    };
    auto rset = [&](unsigned r, uint32_t v) {
        if constexpr (exec_detail::kHasRawRegs<Ctx>) {
            if (r != 0)
                ctx.rawRegs()[r] = v;
        } else {
            rwrite(ctx, r, v);
        }
    };

    // Indexed by MKind / TKind; must match the enum orders exactly.
    static const void *const ktab[] = {
        &&mk_end, &&mk_const, &&mk_lw, &&mk_sw, &&mk_out, &&mk_fork,
        &&mk_add, &&mk_sub, &&mk_mul, &&mk_div, &&mk_rem, &&mk_and,
        &&mk_or, &&mk_xor, &&mk_sll, &&mk_srl, &&mk_sra, &&mk_slt,
        &&mk_sltu,
        &&mk_addc, &&mk_andc, &&mk_orc, &&mk_xorc, &&mk_sltc,
        &&mk_sltuc, &&mk_sllc, &&mk_srlc, &&mk_srac,
        &&mk_gtbeq, &&mk_gtbne, &&mk_gtblt, &&mk_gtbge, &&mk_gtbltu,
        &&mk_gtbgeu,
        &&mk_gfbeq, &&mk_gfbne, &&mk_gfblt, &&mk_gfbge, &&mk_gfbltu,
        &&mk_gfbgeu,
    };
    static_assert(sizeof(ktab) / sizeof(ktab[0]) == NumMKinds);
    static const void *const ttab[] = {
        &&tk_beq, &&tk_bne, &&tk_blt, &&tk_bge, &&tk_bltu, &&tk_bgeu,
        &&tk_jreg, &&tk_halt, &&tk_fall,
    };
    static_assert(sizeof(ttab) / sizeof(ttab[0]) == NumTKinds);

    const MicroOp *m = b->body.data();
    const Terminator *t = &b->term;
    goto *ktab[static_cast<size_t>(m->kind)];

// Each handler dispatches its successor itself (threaded dispatch, as
// in exec/threaded.hh): the indirect branches are distributed, so the
// BTB learns the block's actual micro-op sequence.
#define MSSP_T2_NEXT                                                  \
    do {                                                              \
        ++m;                                                          \
        goto *ktab[static_cast<size_t>(m->kind)];                     \
    } while (0)

#define MSSP_T2_ALU_RR(name, OP)                                      \
    mk_##name: {                                                      \
        uint32_t a = rget(m->ra);                                     \
        uint32_t x = rget(m->rb);                                     \
        uint32_t o;                                                   \
        evalAlu(Opcode::OP, a, x, o);                                 \
        rsetNZ(m->rd, o);                                             \
        MSSP_T2_NEXT;                                                 \
    }

#define MSSP_T2_ALU_RC(name, OP)                                      \
    mk_##name: {                                                      \
        uint32_t a = rget(m->ra);                                     \
        uint32_t o;                                                   \
        evalAlu(Opcode::OP, a, m->c, o);                              \
        rsetNZ(m->rd, o);                                             \
        MSSP_T2_NEXT;                                                 \
    }

mk_const:
    rsetNZ(m->rd, m->c);
    MSSP_T2_NEXT;
mk_lw:
    rset(m->rd, ctx.readMem(rget(m->ra) + m->c));
    MSSP_T2_NEXT;
mk_sw:
    ctx.writeMem(rget(m->ra) + m->c, rget(m->rb));
    MSSP_T2_NEXT;
mk_out:
    ctx.output(static_cast<uint16_t>(m->c), rget(m->ra));
    MSSP_T2_NEXT;
mk_fork:
    ctx.fork(m->c);
    MSSP_T2_NEXT;

    MSSP_T2_ALU_RR(add, Add)
    MSSP_T2_ALU_RR(sub, Sub)
    MSSP_T2_ALU_RR(mul, Mul)
    MSSP_T2_ALU_RR(div, Div)
    MSSP_T2_ALU_RR(rem, Rem)
    MSSP_T2_ALU_RR(and, And)
    MSSP_T2_ALU_RR(or, Or)
    MSSP_T2_ALU_RR(xor, Xor)
    MSSP_T2_ALU_RR(sll, Sll)
    MSSP_T2_ALU_RR(srl, Srl)
    MSSP_T2_ALU_RR(sra, Sra)
    MSSP_T2_ALU_RR(slt, Slt)
    MSSP_T2_ALU_RR(sltu, Sltu)

    MSSP_T2_ALU_RC(addc, Add)
    MSSP_T2_ALU_RC(andc, And)
    MSSP_T2_ALU_RC(orc, Or)
    MSSP_T2_ALU_RC(xorc, Xor)
    MSSP_T2_ALU_RC(sltc, Slt)
    MSSP_T2_ALU_RC(sltuc, Sltu)
    MSSP_T2_ALU_RC(sllc, Sll)
    MSSP_T2_ALU_RC(srlc, Srl)
    MSSP_T2_ALU_RC(srac, Sra)

// Guard: keep running while the branch goes the compiled way, else
// side-exit with the exact retire count baked into the micro-op.
#define MSSP_T2_GUARD(name, cmp, cont_on)                             \
    mk_##name: {                                                      \
        uint32_t a = rget(m->ra);                                     \
        uint32_t bb = rget(m->rb);                                    \
        auto sa = static_cast<int32_t>(a);                            \
        auto sb = static_cast<int32_t>(bb);                           \
        (void)sa; (void)sb;                                           \
        if ((cmp) == (cont_on))                                       \
            MSSP_T2_NEXT;                                             \
        return {m->c, false, done + m->rd, entered};                  \
    }

    MSSP_T2_GUARD(gtbeq, a == bb, true)
    MSSP_T2_GUARD(gtbne, a != bb, true)
    MSSP_T2_GUARD(gtblt, sa < sb, true)
    MSSP_T2_GUARD(gtbge, sa >= sb, true)
    MSSP_T2_GUARD(gtbltu, a < bb, true)
    MSSP_T2_GUARD(gtbgeu, a >= bb, true)
    MSSP_T2_GUARD(gfbeq, a == bb, false)
    MSSP_T2_GUARD(gfbne, a != bb, false)
    MSSP_T2_GUARD(gfblt, sa < sb, false)
    MSSP_T2_GUARD(gfbge, sa >= sb, false)
    MSSP_T2_GUARD(gfbltu, a < bb, false)
    MSSP_T2_GUARD(gfbgeu, a >= bb, false)

mk_end:
    t = &b->term;
    goto *ttab[static_cast<size_t>(t->kind)];

#define MSSP_T2_BR(name, cmp)                                         \
    tk_##name: {                                                      \
        uint32_t a = rget(t->ra);                                     \
        uint32_t bb = rget(t->rb);                                    \
        auto sa = static_cast<int32_t>(a);                            \
        auto sb = static_cast<int32_t>(bb);                           \
        (void)sa; (void)sb;                                           \
        if (cmp) {                                                    \
            next_pc = t->takenPc;                                     \
            slot = &b->takenLink;                                     \
        } else {                                                      \
            next_pc = t->fallPc;                                      \
            slot = &b->fallLink;                                      \
        }                                                             \
        goto chain;                                                   \
    }

    MSSP_T2_BR(beq, a == bb)
    MSSP_T2_BR(bne, a != bb)
    MSSP_T2_BR(blt, sa < sb)
    MSSP_T2_BR(bge, sa >= sb)
    MSSP_T2_BR(bltu, a < bb)
    MSSP_T2_BR(bgeu, a >= bb)

tk_jreg: {
        uint32_t target = rget(t->ra) + t->imm;
        rset(t->rd, t->c);
        done += b->nInsts;
        budget -= b->nInsts;
        // No link slot for register-indirect targets; chain through
        // the lookup tables when the target happens to be compiled.
        Block *nb = lookup(target);
        if (nb != nullptr && nb->nInsts <= budget) {
            b = nb;
            ++entered;
            m = b->body.data();
            goto *ktab[static_cast<size_t>(m->kind)];
        }
        return {target, false, done, entered};
    }
tk_halt:
    return {t->fallPc, true, done + b->nInsts, entered};
tk_fall:
    next_pc = t->fallPc;
    slot = &b->fallLink;
    goto chain;

// Block-to-block transfer: charge the finished block, resolve the
// direct link (filling it from the lookup tables the first time), and
// jump straight into the successor's body.
chain: {
        done += b->nInsts;
        budget -= b->nInsts;
        Block *nb = *slot;
        if (nb == nullptr && (nb = lookup(next_pc)) != nullptr)
            *slot = nb;
        if (nb != nullptr && nb->nInsts <= budget) {
            b = nb;
            ++entered;
            m = b->body.data();
            goto *ktab[static_cast<size_t>(m->kind)];
        }
        return {next_pc, false, done, entered};
    }

#undef MSSP_T2_BR
#undef MSSP_T2_GUARD
#undef MSSP_T2_ALU_RC
#undef MSSP_T2_ALU_RR
#undef MSSP_T2_NEXT

#else // !MSSP_HAS_COMPUTED_GOTO

    for (;;) {
        for (const MicroOp *m = b->body.data(); m->kind != MKind::End;
             ++m) {
            if (!applyMicro(*m, ctx))  // guard side-exit
                return {m->c, false, done + m->rd, entered};
        }

        const Terminator &t = b->term;
        switch (t.kind) {
          case TKind::Beq:
          case TKind::Bne:
          case TKind::Blt:
          case TKind::Bge:
          case TKind::Bltu:
          case TKind::Bgeu: {
            uint32_t a = rread(ctx, t.ra);
            uint32_t bb = rread(ctx, t.rb);
            auto sa = static_cast<int32_t>(a);
            auto sb = static_cast<int32_t>(bb);
            bool taken = false;
            switch (t.kind) {
              case TKind::Beq:  taken = a == bb; break;
              case TKind::Bne:  taken = a != bb; break;
              case TKind::Blt:  taken = sa < sb; break;
              case TKind::Bge:  taken = sa >= sb; break;
              case TKind::Bltu: taken = a < bb; break;
              case TKind::Bgeu: taken = a >= bb; break;
              default: panic("blockjit: bad branch terminator");
            }
            next_pc = taken ? t.takenPc : t.fallPc;
            slot = taken ? &b->takenLink : &b->fallLink;
            break;
          }
          case TKind::JumpReg: {
            next_pc = rread(ctx, t.ra) + t.imm;
            rwrite(ctx, t.rd, t.c);
            slot = nullptr;  // indirect target: no link slot
            break;
          }
          case TKind::HaltT:
            return {t.fallPc, true, done + b->nInsts, entered};
          case TKind::FallThrough:
            next_pc = t.fallPc;
            slot = &b->fallLink;
            break;
        }

        // Block-to-block transfer (same rules as the computed-goto
        // `chain` label above).
        done += b->nInsts;
        budget -= b->nInsts;
        Block *nb;
        if (slot != nullptr) {
            nb = *slot;
            if (nb == nullptr && (nb = lookup(next_pc)) != nullptr)
                *slot = nb;
        } else {
            nb = lookup(next_pc);
        }
        if (nb == nullptr || nb->nInsts > budget)
            return {next_pc, false, done, entered};
        b = nb;
        ++entered;
    }

#endif // MSSP_HAS_COMPUTED_GOTO
}

template <class Ctx>
EngineResult
BlockJit::run(uint32_t pc, uint64_t max_steps, Ctx &ctx)
{
    syncVersion();

    EngineResult r;
    // Leaders are engine entry points and control-transfer targets;
    // only there can a block begin, so only there do we pay a lookup.
    bool at_leader = true;
    while (r.retired < max_steps) {
        if (at_leader) {
            Block *b = lookup(pc);
            if (b == nullptr)
                b = train(pc);
            if (b != nullptr && b->nInsts <= max_steps - r.retired) {
                // Fast path: the chain executor follows direct links
                // internally and comes back only at a cold edge, an
                // exhausted budget, or halt.
                ChainResult cr =
                    execChain(b, ctx, max_steps - r.retired);
                r.retired += cr.retired;
                blocks_entered_ += cr.entered;
                insts_in_blocks_ += cr.retired;
                pc = cr.pc;
                if (cr.halted) {
                    r.status = StepStatus::Halted;
                    r.pc = pc;  // pinned at the halt instruction
                    return r;
                }
                continue;  // new leader: give train() its heat tick
            }
        }
        // Deopt path: cold code or budget tail — single step.
        const Instruction &inst = dc_->at(pc);
        StepResult res = executeDecodedOn(pc, inst, ctx);
        if (res.status == StepStatus::Illegal) {
            r.status = StepStatus::Illegal;
            break;
        }
        ++r.retired;
        if (res.status == StepStatus::Halted) {
            r.status = StepStatus::Halted;
            break;
        }
        if (isCondBranch(inst.op)) {
            // Train the guard-folding heuristic while the region is
            // interpreted (it stays warm for later recompiles too).
            observeBranch(pc, res.branchTaken);
            at_leader = true;
        } else {
            at_leader = isControl(inst.op);
        }
        pc = res.nextPc;
    }
    r.pc = pc;
    return r;
}

/**
 * Run @p ctx on the selected tier. The one dispatch point every
 * hot-loop consumer shares: T0/T1 need no state beyond the decode
 * cache; T2 needs its per-cache BlockJit (@p jit may be null, which
 * degrades BlockJit to Threaded). Hooked consumers must pre-resolve
 * with resolveHookedBackend (T2 takes no hooks); passing a non-null
 * hook here with BlockJit selected degrades to Threaded as well.
 */
template <class Ctx, class Hook = NullHook>
inline EngineResult
runOnBackend(BackendKind kind, DecodeCache &dc, uint32_t pc,
             uint64_t max_steps, Ctx &ctx, BlockJit *jit = nullptr,
             Hook &&hook = {})
{
    if (kind == BackendKind::BlockJit && jit != nullptr &&
        !kHookedEngine<Hook>) {
        return jit->run(pc, max_steps, ctx);
    }
    if (kind == BackendKind::Ref)
        return runRefEngine(dc, pc, max_steps, ctx, hook);
    return runThreadedEngine(dc, pc, max_steps, ctx, hook);
}

} // namespace mssp

#endif // MSSP_EXEC_BLOCKJIT_HH

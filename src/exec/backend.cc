#include "exec/backend.hh"

#include <cstdlib>

#include "exec/blockjit.hh"
#include "exec/threaded.hh"
#include "sim/logging.hh"

namespace mssp
{

const char *
backendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Ref:      return "ref";
      case BackendKind::Threaded: return "threaded";
      case BackendKind::BlockJit: return "blockjit";
    }
    return "?";
}

std::optional<BackendKind>
backendFromName(const std::string &name)
{
    if (name == "ref")
        return BackendKind::Ref;
    if (name == "threaded")
        return BackendKind::Threaded;
    if (name == "blockjit")
        return BackendKind::BlockJit;
    return std::nullopt;
}

bool
backendAvailable(BackendKind kind)
{
    return kind != BackendKind::Threaded || MSSP_HAS_COMPUTED_GOTO;
}

BackendKind
resolveBackendFor(BackendKind wanted, bool threaded_available)
{
    if (wanted == BackendKind::Threaded && !threaded_available)
        return BackendKind::Ref;
    return wanted;
}

BackendKind
resolveBackend(BackendKind wanted)
{
    return resolveBackendFor(wanted, MSSP_HAS_COMPUTED_GOTO);
}

BackendKind
resolveHookedBackend(BackendKind wanted)
{
    if (wanted == BackendKind::BlockJit)
        wanted = BackendKind::Threaded;
    return resolveBackend(wanted);
}

namespace
{

BackendKind
backendFromEnv()
{
    const char *env = std::getenv("MSSP_EXEC_BACKEND");
    if (env == nullptr || *env == '\0')
        return BackendKind::Ref;
    if (auto kind = backendFromName(env))
        return *kind;
    warn("MSSP_EXEC_BACKEND=%s is not a backend "
         "(ref|threaded|blockjit); using ref", env);
    return BackendKind::Ref;
}

// Written only by setDefaultBackend (tool startup, before worker
// threads exist); read thereafter.
BackendKind g_default_backend = backendFromEnv();

} // anonymous namespace

BackendKind
defaultBackend()
{
    return g_default_backend;
}

void
setDefaultBackend(BackendKind kind)
{
    g_default_backend = kind;
}

namespace
{

class RefBackend final : public ExecBackend
{
  public:
    BackendKind kind() const override { return BackendKind::Ref; }
    const char *name() const override { return "ref"; }
    bool available() const override { return true; }
    unsigned capabilities() const override { return CapPerStepHook; }

    EngineResult
    run(DecodeCache &dc, uint32_t pc, uint64_t max_steps,
        ExecContext &ctx) const override
    {
        return runRefEngine(dc, pc, max_steps, ctx);
    }
};

class ThreadedBackend final : public ExecBackend
{
  public:
    BackendKind kind() const override { return BackendKind::Threaded; }
    const char *name() const override { return "threaded"; }
    bool available() const override { return MSSP_HAS_COMPUTED_GOTO; }
    unsigned capabilities() const override { return CapPerStepHook; }

    EngineResult
    run(DecodeCache &dc, uint32_t pc, uint64_t max_steps,
        ExecContext &ctx) const override
    {
        return runThreadedEngine(dc, pc, max_steps, ctx);
    }
};

class BlockJitBackend final : public ExecBackend
{
  public:
    BackendKind kind() const override { return BackendKind::BlockJit; }
    const char *name() const override { return "blockjit"; }
    bool available() const override { return true; }
    unsigned capabilities() const override { return CapBlockCompile; }

    EngineResult
    run(DecodeCache &dc, uint32_t pc, uint64_t max_steps,
        ExecContext &ctx) const override
    {
        // The type-erased path gets a run-scoped block cache; hot
        // loops hold a persistent BlockJit instead (runOnBackend).
        BlockJit jit(dc);
        return jit.run(pc, max_steps, ctx);
    }
};

const RefBackend g_ref;
const ThreadedBackend g_threaded;
const BlockJitBackend g_blockjit;
const ExecBackend *const g_backends[NumBackends] = {
    &g_ref, &g_threaded, &g_blockjit,
};

} // anonymous namespace

const ExecBackend &
backend(BackendKind kind)
{
    return *g_backends[static_cast<size_t>(kind)];
}

const ExecBackend *const *
allBackends()
{
    return g_backends;
}

} // namespace mssp

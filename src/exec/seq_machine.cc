#include "exec/seq_machine.hh"

namespace mssp
{

SeqMachine::SeqMachine(const Program &prog)
{
    state_.loadProgram(prog);
}

StepResult
SeqMachine::step()
{
    uint32_t pc = state_.pc();
    StepResult res = stepAt(pc, *this);
    switch (res.status) {
      case StepStatus::Ok:
        state_.setPc(res.nextPc);
        state_.addInstret(1);
        ++inst_count_;
        break;
      case StepStatus::Halted:
        halted_ = true;
        state_.addInstret(1);
        ++inst_count_;
        break;
      case StepStatus::Illegal:
        faulted_ = true;
        break;
    }
    if (observer_)
        observer_->onStep(pc, res);
    return res;
}

SeqRunResult
SeqMachine::run(uint64_t max_insts)
{
    SeqRunResult result;
    while (!halted_ && !faulted_ && result.instCount < max_insts) {
        step();
        ++result.instCount;
    }
    result.halted = halted_;
    result.faulted = faulted_;
    result.finalPc = state_.pc();
    return result;
}

} // namespace mssp

#include "exec/seq_machine.hh"

#include <algorithm>

#include "exec/blockjit.hh"
#include "sim/supervisor.hh"

namespace mssp
{

namespace
{

/** Supervised slice size: small enough that a wall-clock deadline is
 *  observed within a fraction of a millisecond at interpreter speed
 *  (~150-400M insts/s across the tiers), large enough that the
 *  between-slice poll is noise. */
constexpr uint64_t kSuperviseSliceInsts = 16384;

} // anonymous namespace

SeqMachine::SeqMachine(const Program &prog)
{
    state_.loadProgram(prog);
}

SeqMachine::~SeqMachine() = default;

void
SeqMachine::setBackend(BackendKind kind)
{
    backend_ = resolveBackend(kind);
}

void
SeqMachine::applyStep(const StepResult &res)
{
    switch (res.status) {
      case StepStatus::Ok:
        state_.setPc(res.nextPc);
        state_.addInstret(1);
        ++inst_count_;
        break;
      case StepStatus::Halted:
        halted_ = true;
        state_.addInstret(1);
        ++inst_count_;
        break;
      case StepStatus::Illegal:
        faulted_ = true;
        break;
    }
}

StepResult
SeqMachine::step()
{
    uint32_t pc = state_.pc();
    StepResult res = executeDecodedOn(pc, decode_.at(pc), *this);
    applyStep(res);
    if (observer_)
        observer_->onStep(pc, res);
    return res;
}

// hot + aligned for the same layout-stability reason as
// executeDecodedOn (exec/executor.hh): the batched run loop and the
// dispatch body it calls should sit together in .text.hot with fixed
// alignment, immune to unrelated code growth elsewhere.
__attribute__((hot, aligned(64))) SeqRunResult
SeqMachine::runLoop(uint64_t max_insts)
{
    SeqRunResult result;

    if (observer_) {
        // Observed runs keep exact per-step bookkeeping.
        while (!halted_ && !faulted_ && result.instCount < max_insts) {
            step();
            ++result.instCount;
        }
    } else if (!halted_ && !faulted_) {
        // Hot path: the selected execution tier runs with pc and
        // retirement in locals; storage accesses devirtualize
        // (SeqMachine is final). All tiers are architecturally
        // interchangeable here (tests/test_backend_fuzz.cpp).
        if (backend_ == BackendKind::BlockJit && !jit_)
            jit_ = std::make_unique<BlockJit>(decode_);
        EngineResult er = runOnBackend(backend_, decode_, state_.pc(),
                                       max_insts, *this, jit_.get());
        halted_ = er.status == StepStatus::Halted;
        faulted_ = er.status == StepStatus::Illegal;
        state_.setPc(er.pc);
        state_.addInstret(er.retired);
        inst_count_ += er.retired;
        // instCount counts attempts: a faulting attempt is included
        // even though it does not retire (RunRespectsMaxInsts).
        result.instCount = er.retired + (faulted_ ? 1 : 0);
    }

    result.halted = halted_;
    result.faulted = faulted_;
    result.finalPc = state_.pc();
    return result;
}

SeqRunResult
SeqMachine::run(uint64_t max_insts)
{
    Supervision *sup = currentSupervision();
    if (!sup)
        return runLoop(max_insts);

    // Supervised: run bounded slices on the selected tier (no tier
    // degradation — a bounded engine call is the budget mechanism
    // every tier already implements), polling between slices. Trips
    // throw at a slice boundary, leaving the machine consistent.
    SeqRunResult total;
    while (!halted_ && !faulted_ && total.instCount < max_insts) {
        sup->checkOrThrow();
        uint64_t budget = sup->instsRemaining();
        if (budget == 0)
            sup->tripInstLimit();   // work left, none allowed: trip
        uint64_t slice = std::min(
            {max_insts - total.instCount, kSuperviseSliceInsts,
             budget});
        SeqRunResult part = runLoop(slice);
        total.instCount += part.instCount;
        // Attempted == retired for SEQ (a faulting attempt counts as
        // executed work and ends the loop anyway).
        sup->consume(part.instCount, part.instCount);
    }
    total.halted = halted_;
    total.faulted = faulted_;
    total.finalPc = state_.pc();
    return total;
}

} // namespace mssp

#include "exec/seq_machine.hh"

#include "exec/blockjit.hh"

namespace mssp
{

SeqMachine::SeqMachine(const Program &prog)
{
    state_.loadProgram(prog);
}

SeqMachine::~SeqMachine() = default;

void
SeqMachine::setBackend(BackendKind kind)
{
    backend_ = resolveBackend(kind);
}

void
SeqMachine::applyStep(const StepResult &res)
{
    switch (res.status) {
      case StepStatus::Ok:
        state_.setPc(res.nextPc);
        state_.addInstret(1);
        ++inst_count_;
        break;
      case StepStatus::Halted:
        halted_ = true;
        state_.addInstret(1);
        ++inst_count_;
        break;
      case StepStatus::Illegal:
        faulted_ = true;
        break;
    }
}

StepResult
SeqMachine::step()
{
    uint32_t pc = state_.pc();
    StepResult res = executeDecodedOn(pc, decode_.at(pc), *this);
    applyStep(res);
    if (observer_)
        observer_->onStep(pc, res);
    return res;
}

// hot + aligned for the same layout-stability reason as
// executeDecodedOn (exec/executor.hh): the batched run loop and the
// dispatch body it calls should sit together in .text.hot with fixed
// alignment, immune to unrelated code growth elsewhere.
__attribute__((hot, aligned(64))) SeqRunResult
SeqMachine::run(uint64_t max_insts)
{
    SeqRunResult result;

    if (observer_) {
        // Observed runs keep exact per-step bookkeeping.
        while (!halted_ && !faulted_ && result.instCount < max_insts) {
            step();
            ++result.instCount;
        }
    } else if (!halted_ && !faulted_) {
        // Hot path: the selected execution tier runs with pc and
        // retirement in locals; storage accesses devirtualize
        // (SeqMachine is final). All tiers are architecturally
        // interchangeable here (tests/test_backend_fuzz.cpp).
        if (backend_ == BackendKind::BlockJit && !jit_)
            jit_ = std::make_unique<BlockJit>(decode_);
        EngineResult er = runOnBackend(backend_, decode_, state_.pc(),
                                       max_insts, *this, jit_.get());
        halted_ = er.status == StepStatus::Halted;
        faulted_ = er.status == StepStatus::Illegal;
        state_.setPc(er.pc);
        state_.addInstret(er.retired);
        inst_count_ += er.retired;
        // instCount counts attempts: a faulting attempt is included
        // even though it does not retire (RunRespectsMaxInsts).
        result.instCount = er.retired + (faulted_ ? 1 : 0);
    }

    result.halted = halted_;
    result.faulted = faulted_;
    result.finalPc = state_.pc();
    return result;
}

} // namespace mssp

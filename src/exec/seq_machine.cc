#include "exec/seq_machine.hh"

namespace mssp
{

SeqMachine::SeqMachine(const Program &prog)
{
    state_.loadProgram(prog);
}

void
SeqMachine::applyStep(const StepResult &res)
{
    switch (res.status) {
      case StepStatus::Ok:
        state_.setPc(res.nextPc);
        state_.addInstret(1);
        ++inst_count_;
        break;
      case StepStatus::Halted:
        halted_ = true;
        state_.addInstret(1);
        ++inst_count_;
        break;
      case StepStatus::Illegal:
        faulted_ = true;
        break;
    }
}

StepResult
SeqMachine::step()
{
    uint32_t pc = state_.pc();
    StepResult res = executeDecodedOn(pc, decode_.at(pc), *this);
    applyStep(res);
    if (observer_)
        observer_->onStep(pc, res);
    return res;
}

// hot + aligned for the same layout-stability reason as
// executeDecodedOn (exec/executor.hh): the batched run loop and the
// dispatch body it calls should sit together in .text.hot with fixed
// alignment, immune to unrelated code growth elsewhere.
__attribute__((hot, aligned(64))) SeqRunResult
SeqMachine::run(uint64_t max_insts)
{
    SeqRunResult result;

    if (observer_) {
        // Observed runs keep exact per-step bookkeeping.
        while (!halted_ && !faulted_ && result.instCount < max_insts) {
            step();
            ++result.instCount;
        }
    } else {
        // Hot path: pc and retirement stay in locals; storage
        // accesses devirtualize (SeqMachine is final).
        uint32_t pc = state_.pc();
        uint64_t steps = 0;
        uint64_t retired = 0;
        while (!halted_ && !faulted_ && steps < max_insts) {
            StepResult res =
                executeDecodedOn(pc, decode_.at(pc), *this);
            ++steps;
            switch (res.status) {
              case StepStatus::Ok:
                pc = res.nextPc;
                ++retired;
                break;
              case StepStatus::Halted:
                halted_ = true;
                ++retired;
                break;
              case StepStatus::Illegal:
                faulted_ = true;
                break;
            }
        }
        state_.setPc(pc);
        state_.addInstret(retired);
        inst_count_ += retired;
        result.instCount = steps;
    }

    result.halted = halted_;
    result.faulted = faulted_;
    result.finalPc = state_.pc();
    return result;
}

} // namespace mssp

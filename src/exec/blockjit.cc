#include "exec/blockjit.hh"

namespace mssp
{

namespace
{

/** Pure ALU ops (everything evalAlu accepts). */
bool
isAluOp(Opcode op)
{
    return isRegRegAlu(op) ||
           (op >= Opcode::Addi && op <= Opcode::Srai) ||
           op == Opcode::Lui;
}

} // anonymous namespace

/**
 * Compile the region starting at @p leader into a superop chain.
 * Single forward pass over the decoded image: body ops become
 * micro-ops with the opcode baked into the kind and all constants
 * pre-resolved; unconditional constant jumps are folded (compilation
 * continues at the target, emitting only the link write); conditional
 * branches, jalr, halt, the length cap and faults terminate the
 * block. Every instruction retires exactly once whether folded or not
 * (nInsts counts source instructions).
 */
void
BlockJit::compile(uint32_t leader)
{
    using exec_detail::immOperand;

    // MKind mirrors the Opcode ALU groups so kinds are computable by
    // offset; pin the endpoints.
    static_assert(static_cast<int>(MKind::Sltu) -
                      static_cast<int>(MKind::Add) ==
                  static_cast<int>(Opcode::Sltu) -
                      static_cast<int>(Opcode::Add));
    static_assert(static_cast<int>(MKind::SraC) -
                      static_cast<int>(MKind::AddC) ==
                  static_cast<int>(Opcode::Srai) -
                      static_cast<int>(Opcode::Addi));
    static_assert(static_cast<int>(TKind::Bgeu) -
                      static_cast<int>(TKind::Beq) ==
                  static_cast<int>(Opcode::Bgeu) -
                      static_cast<int>(Opcode::Beq));
    static_assert(static_cast<int>(MKind::GTbgeu) -
                      static_cast<int>(MKind::GTbeq) ==
                  static_cast<int>(Opcode::Bgeu) -
                      static_cast<int>(Opcode::Beq));
    static_assert(static_cast<int>(MKind::GFbgeu) -
                      static_cast<int>(MKind::GFbeq) ==
                  static_cast<int>(Opcode::Bgeu) -
                      static_cast<int>(Opcode::Beq));

    auto blk = std::make_unique<Block>();
    blk->start = leader;

    uint32_t pc = leader;
    uint32_t n = 0;
    bool terminated = false;
    while (n < MaxBlockInsts) {
        const Instruction &inst = dc_->at(pc);
        const Opcode op = inst.op;

        if (op == Opcode::Illegal) {
            // Never compile a fault into a block: stop in front of it
            // so the deopt path raises it with the pc pinned there.
            break;
        }
        if (op == Opcode::Halt) {
            blk->term.kind = TKind::HaltT;
            blk->term.fallPc = pc;
            ++n;
            terminated = true;
            break;
        }
        if (isCondBranch(op)) {
            const uint32_t taken_pc =
                pc + 1 + static_cast<uint32_t>(inst.imm);
            const uint32_t fall_pc = pc + 1;
            // Strongly-biased branches (per the deopt interpreter's
            // observations) fold into guards: the block continues
            // down the observed direction and side-exits the other
            // way with an exact retire count.
            auto bit = bias_.find(pc);
            const int8_t bs = bit == bias_.end() ? 0 : bit->second;
            if (bs >= GuardBias || bs <= -GuardBias) {
                const bool expect_taken = bs > 0;
                MicroOp g;
                g.kind = static_cast<MKind>(
                    static_cast<int>(expect_taken ? MKind::GTbeq
                                                  : MKind::GFbeq) +
                    (static_cast<int>(op) -
                     static_cast<int>(Opcode::Beq)));
                g.ra = inst.rs1;
                g.rb = inst.rs2;
                ++n;
                g.rd = static_cast<uint8_t>(n);  // retire incl branch
                g.c = expect_taken ? fall_pc : taken_pc;
                blk->body.push_back(g);
                pc = expect_taken ? taken_pc : fall_pc;
                continue;
            }
            Terminator &t = blk->term;
            t.kind = static_cast<TKind>(
                static_cast<int>(TKind::Beq) +
                (static_cast<int>(op) - static_cast<int>(Opcode::Beq)));
            t.ra = inst.rs1;
            t.rb = inst.rs2;
            t.takenPc = taken_pc;
            t.fallPc = fall_pc;
            ++n;
            terminated = true;
            break;
        }
        if (op == Opcode::Jalr) {
            Terminator &t = blk->term;
            t.kind = TKind::JumpReg;
            t.rd = inst.rd;
            t.ra = inst.rs1;
            t.c = pc + 1;
            t.imm = static_cast<uint32_t>(inst.imm);
            ++n;
            terminated = true;
            break;
        }
        if (op == Opcode::Jal) {
            // Fold the jump: emit only the link write and keep
            // compiling at the (constant) target.
            if (inst.rd != 0) {
                MicroOp mo;
                mo.kind = MKind::Const;
                mo.rd = inst.rd;
                mo.c = pc + 1;
                blk->body.push_back(mo);
            }
            ++n;
            pc = pc + 1 + static_cast<uint32_t>(inst.imm);
            continue;
        }

        MicroOp mo;
        if (isAluOp(op)) {
            // ALU writes to r0 are architectural nops: retire, emit
            // nothing.
            if (inst.rd == 0) {
                ++n;
                ++pc;
                continue;
            }
            mo.rd = inst.rd;
            if (op == Opcode::Lui) {
                // Lui ignores rs1 entirely: always a constant.
                uint32_t o = 0;
                evalAlu(op, 0, immOperand(op, inst.imm), o);
                mo.kind = MKind::Const;
                mo.c = o;
            } else if (isRegRegAlu(op)) {
                mo.kind = static_cast<MKind>(
                    static_cast<int>(MKind::Add) +
                    (static_cast<int>(op) -
                     static_cast<int>(Opcode::Add)));
                mo.ra = inst.rs1;
                mo.rb = inst.rs2;
            } else {
                uint32_t c = immOperand(op, inst.imm);
                if (inst.rs1 == 0) {
                    // Zero-source immediate ALU (`li` and friends)
                    // folds to a constant at compile time.
                    uint32_t o = 0;
                    evalAlu(op, 0, c, o);
                    mo.kind = MKind::Const;
                    mo.c = o;
                } else {
                    mo.kind = static_cast<MKind>(
                        static_cast<int>(MKind::AddC) +
                        (static_cast<int>(op) -
                         static_cast<int>(Opcode::Addi)));
                    mo.ra = inst.rs1;
                    mo.c = c;
                }
            }
        } else if (op == Opcode::Lw) {
            mo.kind = MKind::Lw;
            mo.rd = inst.rd;
            mo.ra = inst.rs1;
            mo.c = static_cast<uint32_t>(inst.imm);
        } else if (op == Opcode::Sw) {
            mo.kind = MKind::Sw;
            mo.ra = inst.rs1;
            mo.rb = inst.rs2;
            mo.c = static_cast<uint32_t>(inst.imm);
        } else if (op == Opcode::Out) {
            mo.kind = MKind::OutP;
            mo.ra = inst.rs1;
            mo.c = static_cast<uint16_t>(inst.imm);
        } else if (op == Opcode::Fork) {
            mo.kind = MKind::ForkT;
            mo.c = static_cast<uint32_t>(inst.imm);
        } else {
            // Nop: retires, no effect — emit nothing.
            ++n;
            ++pc;
            continue;
        }
        blk->body.push_back(mo);
        ++n;
        ++pc;
    }
    if (!terminated) {
        // Length cap or a fault right past the last body op.
        blk->term.kind = TKind::FallThrough;
        blk->term.fallPc = pc;
    }
    blk->body.push_back(MicroOp{});  // End sentinel
    blk->nInsts = n;  // n == 0 (leader faults) marks "uncompilable"
    blocks_[leader] = std::move(blk);
}

} // namespace mssp

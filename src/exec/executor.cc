#include "exec/executor.hh"

#include <limits>

#include "sim/logging.hh"

namespace mssp
{

namespace
{

/** Read a register honoring the r0-is-zero rule. */
inline uint32_t
rread(ExecContext &ctx, unsigned r)
{
    return r == 0 ? 0 : ctx.readReg(r);
}

/** Write a register honoring the r0-is-zero rule. */
inline void
rwrite(ExecContext &ctx, unsigned r, uint32_t v)
{
    if (r != 0)
        ctx.writeReg(r, v);
}

/** Prepare the immediate operand for an I-type ALU op: logical ops
 *  zero-extend (MIPS-style), the rest use the sign-extended value. */
inline uint32_t
immOperand(Opcode op, int32_t imm)
{
    switch (op) {
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
        return static_cast<uint32_t>(imm) & 0xffffu;
      default:
        return static_cast<uint32_t>(imm);
    }
}

constexpr uint32_t IntMin = 0x80000000u;

} // anonymous namespace

bool
evalAlu(Opcode op, uint32_t a, uint32_t b, uint32_t &out)
{
    auto sa = static_cast<int32_t>(a);
    auto sb = static_cast<int32_t>(b);
    switch (op) {
      case Opcode::Add:
      case Opcode::Addi:
        out = a + b;
        return true;
      case Opcode::Sub:
        out = a - b;
        return true;
      case Opcode::Mul:
        out = a * b;
        return true;
      case Opcode::Div:
        if (b == 0)
            out = 0xffffffffu;
        else if (a == IntMin && sb == -1)
            out = IntMin;
        else
            out = static_cast<uint32_t>(sa / sb);
        return true;
      case Opcode::Rem:
        if (b == 0)
            out = a;
        else if (a == IntMin && sb == -1)
            out = 0;
        else
            out = static_cast<uint32_t>(sa % sb);
        return true;
      case Opcode::And:
      case Opcode::Andi:
        out = a & b;
        return true;
      case Opcode::Or:
      case Opcode::Ori:
        out = a | b;
        return true;
      case Opcode::Xor:
      case Opcode::Xori:
        out = a ^ b;
        return true;
      case Opcode::Sll:
      case Opcode::Slli:
        out = a << (b & 31);
        return true;
      case Opcode::Srl:
      case Opcode::Srli:
        out = a >> (b & 31);
        return true;
      case Opcode::Sra:
      case Opcode::Srai:
        out = static_cast<uint32_t>(sa >> (b & 31));
        return true;
      case Opcode::Slt:
      case Opcode::Slti:
        out = sa < sb ? 1 : 0;
        return true;
      case Opcode::Sltu:
      case Opcode::Sltiu:
        out = a < b ? 1 : 0;
        return true;
      case Opcode::Lui:
        out = (b & 0xffffu) << 16;
        return true;
      default:
        return false;
    }
}

StepResult
executeDecoded(uint32_t pc, const Instruction &inst, ExecContext &ctx)
{
    StepResult res;
    res.inst = inst;
    res.nextPc = pc + 1;

    switch (inst.op) {
      case Opcode::Illegal:
        res.status = StepStatus::Illegal;
        res.nextPc = pc;
        return res;
      case Opcode::Halt:
        res.status = StepStatus::Halted;
        res.nextPc = pc;
        return res;
      case Opcode::Nop:
        return res;
      case Opcode::Fork:
        ctx.fork(static_cast<uint32_t>(inst.imm));
        return res;
      case Opcode::Lw: {
        uint32_t addr = rread(ctx, inst.rs1) +
                        static_cast<uint32_t>(inst.imm);
        rwrite(ctx, inst.rd, ctx.readMem(addr));
        return res;
      }
      case Opcode::Sw: {
        uint32_t addr = rread(ctx, inst.rs1) +
                        static_cast<uint32_t>(inst.imm);
        ctx.writeMem(addr, rread(ctx, inst.rs2));
        return res;
      }
      case Opcode::Out:
        ctx.output(static_cast<uint16_t>(inst.imm),
                   rread(ctx, inst.rs1));
        return res;
      case Opcode::Jal:
        rwrite(ctx, inst.rd, pc + 1);
        res.nextPc = pc + 1 + static_cast<uint32_t>(inst.imm);
        return res;
      case Opcode::Jalr: {
        uint32_t target = rread(ctx, inst.rs1) +
                          static_cast<uint32_t>(inst.imm);
        rwrite(ctx, inst.rd, pc + 1);
        res.nextPc = target;
        return res;
      }
      default:
        break;
    }

    if (isCondBranch(inst.op)) {
        uint32_t a = rread(ctx, inst.rs1);
        uint32_t b = rread(ctx, inst.rs2);
        auto sa = static_cast<int32_t>(a);
        auto sb = static_cast<int32_t>(b);
        bool taken = false;
        switch (inst.op) {
          case Opcode::Beq:  taken = a == b; break;
          case Opcode::Bne:  taken = a != b; break;
          case Opcode::Blt:  taken = sa < sb; break;
          case Opcode::Bge:  taken = sa >= sb; break;
          case Opcode::Bltu: taken = a < b; break;
          case Opcode::Bgeu: taken = a >= b; break;
          default: panic("unreachable branch opcode");
        }
        res.branchTaken = taken;
        if (taken)
            res.nextPc = pc + 1 + static_cast<uint32_t>(inst.imm);
        return res;
    }

    // Remaining opcodes are pure ALU ops.
    uint32_t a = rread(ctx, inst.rs1);
    uint32_t b;
    if (formatOf(inst.op) == Format::R)
        b = rread(ctx, inst.rs2);
    else
        b = immOperand(inst.op, inst.imm);

    uint32_t out;
    if (!evalAlu(inst.op, a, b, out)) {
        res.status = StepStatus::Illegal;
        res.nextPc = pc;
        return res;
    }
    rwrite(ctx, inst.rd, out);
    return res;
}

StepResult
stepAt(uint32_t pc, ExecContext &ctx)
{
    Instruction inst = decode(ctx.fetch(pc));
    return executeDecoded(pc, inst, ctx);
}

} // namespace mssp

#include "exec/executor.hh"

namespace mssp
{

StepResult
executeDecoded(uint32_t pc, const Instruction &inst, ExecContext &ctx)
{
    return executeDecodedOn<ExecContext>(pc, inst, ctx);
}

StepResult
stepAt(uint32_t pc, ExecContext &ctx)
{
    Instruction inst = decode(ctx.fetch(pc));
    return executeDecoded(pc, inst, ctx);
}

} // namespace mssp

/**
 * @file
 * Abstract execution context.
 *
 * The instruction executor is written against this interface so that
 * the same semantics (the formal model's deterministic `next`
 * function) drive every machine in the system: the SEQ reference, MSSP
 * slaves (speculative, live-in recording), the MSSP master (distilled
 * program, write-delta tracking) and non-speculative recovery.
 */

#ifndef MSSP_EXEC_CONTEXT_HH
#define MSSP_EXEC_CONTEXT_HH

#include <cstdint>
#include <vector>

namespace mssp
{

/** One program output: the ordered (port, value) stream is the
 *  primary observable for equivalence checking. */
struct Output
{
    uint16_t port;
    uint32_t value;

    bool operator==(const Output &) const = default;
};

using OutputStream = std::vector<Output>;

/** Storage and side-effect interface the executor runs against. */
class ExecContext
{
  public:
    virtual ~ExecContext() = default;

    /** Read a register. The executor guarantees r != 0. */
    virtual uint32_t readReg(unsigned r) = 0;

    /** Write a register. The executor guarantees r != 0. */
    virtual void writeReg(unsigned r, uint32_t v) = 0;

    /** Read a data word. */
    virtual uint32_t readMem(uint32_t addr) = 0;

    /** Write a data word. */
    virtual void writeMem(uint32_t addr, uint32_t v) = 0;

    /**
     * Fetch the instruction word at @p pc. Fetches are *not* data
     * reads: MSSP assumes programs are not self-modifying, so slave
     * contexts do not record fetched words as live-ins (DESIGN.md §8).
     */
    virtual uint32_t fetch(uint32_t pc) = 0;

    /** Emit a program output. */
    virtual void output(uint16_t port, uint32_t value) = 0;

    /**
     * FORK side effect. Only the MSSP master overrides this; the
     * default (every other machine) treats FORK as a NOP.
     */
    virtual void fork(uint32_t task_map_index) { (void)task_map_index; }
};

} // namespace mssp

#endif // MSSP_EXEC_CONTEXT_HH

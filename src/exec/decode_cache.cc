#include "exec/decode_cache.hh"

namespace mssp
{

void
DecodeCache::fillMru(uint32_t page_num)
{
    auto &slot = pages_[page_num];
    if (!slot) {
        slot = std::make_unique<Page>();
        uint32_t base = page_num << PageBits;
        if (prog_) {
            // Decode only the words present in the (sparse) image;
            // the rest stay at the default Instruction, which equals
            // decode(0).
            const auto &image = prog_->image();
            for (auto it = image.lower_bound(base);
                 it != image.end() &&
                 (it->first >> PageBits) == page_num;
                 ++it) {
                slot->insts[it->first & OffsetMask] =
                    decode(it->second);
            }
        } else {
            for (uint32_t off = 0; off < PageWords; ++off) {
                if (uint32_t word = mem_->read(base + off))
                    slot->insts[off] = decode(word);
            }
        }
    }
    mru_num_ = page_num;
    mru_ = slot.get();
}

} // namespace mssp

/**
 * @file
 * Tiered execution backends.
 *
 * Every machine in the system retires instructions through one of
 * three interchangeable execution tiers:
 *
 *  - **T0 `ref`** — the template interpreter (`executeDecodedOn`'s
 *    switch). It is the semantic oracle: the single implementation of
 *    μRISC semantics every faster tier is differentially checked
 *    against (tests/test_backend_fuzz.cpp).
 *  - **T1 `threaded`** — a computed-goto threaded-dispatch
 *    interpreter (exec/threaded.hh) that executes straight out of the
 *    predecode cache's decoded pages. Requires the GNU `&&label`
 *    extension; when `MSSP_HAS_COMPUTED_GOTO` is off it silently
 *    degrades to T0.
 *  - **T2 `blockjit`** — a block-compiling tier (exec/blockjit.hh)
 *    that turns hot decoded basic blocks into chains of
 *    pre-specialized superinstructions, deopting to per-instruction
 *    stepping at cold code, budget tails, faults and (for machines
 *    with per-step obligations) everywhere — see capabilities below.
 *
 * The tiers share one engine contract so their architectural effects
 * are bit-identical by construction:
 *
 *  - The engine runs from a DecodeCache at a starting pc for at most
 *    `maxSteps` *retired* instructions against a Ctx (any
 *    ExecContext-shaped class; `final` classes devirtualize).
 *  - An optional per-step Hook observes/steers execution:
 *    `preStep(pc, inst) -> bool` runs before the instruction (false =
 *    stop without executing it); `postStep(pc, res) -> StepVerdict`
 *    runs after it and may Continue, Stop (retire, apply nextPc, then
 *    stop), or Discard (un-retire the step: pc does not advance —
 *    the slaves' MMIO-abort and the master's Jalr-translation-fault
 *    semantics). postStep receives the StepResult *mutable* so hooks
 *    may redirect nextPc (the master's distilled-address
 *    translation).
 *  - Halting and faulting stop the engine with the pc pinned at the
 *    halt/fault instruction; a faulting attempt does not retire.
 *
 * Hook support is a *capability*: T2 executes whole blocks with no
 * per-instruction boundary, so consumers that need a hook are
 * resolved down to T1 (resolveHookedBackend). The NullHook fast path
 * compiles all hook plumbing out.
 */

#ifndef MSSP_EXEC_BACKEND_HH
#define MSSP_EXEC_BACKEND_HH

#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>

#include "exec/decode_cache.hh"
#include "exec/executor.hh"

// The computed-goto tier needs the GNU address-of-label extension.
// -DMSSP_NO_COMPUTED_GOTO forces the portable fallback (CI builds it
// to prove the degraded path stays green).
#if !defined(MSSP_NO_COMPUTED_GOTO) && (defined(__GNUC__) || defined(__clang__))
#define MSSP_HAS_COMPUTED_GOTO 1
#else
#define MSSP_HAS_COMPUTED_GOTO 0
#endif

namespace mssp
{

/** The selectable execution tiers. */
enum class BackendKind : uint8_t
{
    Ref,       ///< T0: template-interpreter oracle
    Threaded,  ///< T1: computed-goto threaded dispatch
    BlockJit,  ///< T2: superinstruction block compiler
};

/** Hook verdict after an executed step. */
enum class StepVerdict : uint8_t
{
    Continue,  ///< keep running
    Stop,      ///< retire this step, then stop
    Discard,   ///< un-retire this step: pc does not advance; stop
};

/** The no-op hook: engines compile all hook plumbing out. */
struct NullHook
{
    bool preStep(uint32_t, const Instruction &) { return true; }
    StepVerdict postStep(uint32_t, StepResult &)
    {
        return StepVerdict::Continue;
    }
};

template <class Hook>
inline constexpr bool kHookedEngine =
    !std::is_same_v<std::remove_cvref_t<Hook>, NullHook>;

/** What an engine run did. */
struct EngineResult
{
    /** Ok = stopped by budget or hook; else Halted/Illegal. */
    StepStatus status = StepStatus::Ok;
    /** Instructions retired (a faulting attempt is not retired). */
    uint64_t retired = 0;
    /** Where execution stopped. Pinned at the halt/fault instruction
     *  on Halted/Illegal and at the un-advanced pc on Discard. */
    uint32_t pc = 0;
};

/**
 * T0: the reference engine. One canonical loop around
 * executeDecodedOn — this *is* the semantics; the faster tiers are
 * checked against it.
 */
template <class Ctx, class Hook = NullHook>
inline EngineResult
runRefEngine(DecodeCache &dc, uint32_t pc, uint64_t max_steps, Ctx &ctx,
             Hook &&hook = {})
{
    EngineResult r;
    while (r.retired < max_steps) {
        const Instruction &inst = dc.at(pc);
        if constexpr (kHookedEngine<Hook>) {
            if (!hook.preStep(pc, inst))
                break;
        }
        StepResult res = executeDecodedOn(pc, inst, ctx);
        if (res.status == StepStatus::Illegal) {
            r.status = StepStatus::Illegal;
            break;
        }
        if constexpr (kHookedEngine<Hook>) {
            StepVerdict v = hook.postStep(pc, res);
            if (v == StepVerdict::Discard)
                break;
            ++r.retired;
            if (res.status == StepStatus::Halted) {
                r.status = StepStatus::Halted;
                break;
            }
            pc = res.nextPc;
            if (v == StepVerdict::Stop)
                break;
        } else {
            ++r.retired;
            if (res.status == StepStatus::Halted) {
                r.status = StepStatus::Halted;
                break;
            }
            pc = res.nextPc;
        }
    }
    r.pc = pc;
    return r;
}

/** Stable tier name ("ref" / "threaded" / "blockjit"). */
const char *backendName(BackendKind kind);

/** Parse a tier name; nullopt for unknown names. */
std::optional<BackendKind> backendFromName(const std::string &name);

/** @return true when @p kind can execute on this build (T1 needs
 *  computed goto; T0/T2 always can — T2's gaps step via T1/T0). */
bool backendAvailable(BackendKind kind);

/** Capability bits (ExecBackend::capabilities). */
enum : unsigned
{
    /** Tier honors per-step hooks (pre/postStep at every retire). */
    CapPerStepHook = 1u << 0,
    /** Tier compiles/caches multi-instruction blocks. */
    CapBlockCompile = 1u << 1,
};

/**
 * Availability fallback, with the availability predicate injected so
 * the degraded path is unit-testable on builds that *do* have
 * computed goto: an unavailable tier degrades Threaded -> Ref.
 */
BackendKind resolveBackendFor(BackendKind wanted, bool threaded_available);

/** Availability fallback for this build. */
BackendKind resolveBackend(BackendKind wanted);

/** Fallback for consumers that need per-step hooks: BlockJit ->
 *  Threaded (then availability fallback as above). */
BackendKind resolveHookedBackend(BackendKind wanted);

/**
 * The process-wide default tier. Initialized once from the
 * `MSSP_EXEC_BACKEND` environment variable ("ref" when unset; unknown
 * values warn and fall back to "ref"); tools' `--backend` flag
 * overrides it via setDefaultBackend before constructing machines.
 */
BackendKind defaultBackend();

/** Override the process-wide default tier (call before spawning
 *  worker threads; machines snapshot it at construction). */
void setDefaultBackend(BackendKind kind);

/**
 * Type-erased tier handle for tools/tests: run any ExecContext on any
 * tier by name. Hot loops do not go through this interface — they
 * instantiate the engine templates directly against their `final`
 * context types (runOnBackend in exec/blockjit.hh).
 */
class ExecBackend
{
  public:
    virtual ~ExecBackend() = default;

    virtual BackendKind kind() const = 0;
    /** Stable selection name. */
    virtual const char *name() const = 0;
    /** True when this tier can execute on this build. */
    virtual bool available() const = 0;
    /** Cap* bitmask. */
    virtual unsigned capabilities() const = 0;

    /** Run up to @p max_steps retired instructions from @p pc. */
    virtual EngineResult run(DecodeCache &dc, uint32_t pc,
                             uint64_t max_steps, ExecContext &ctx) const = 0;
};

/** The registered tier singletons, in BackendKind order. */
const ExecBackend &backend(BackendKind kind);

/** All registered tiers (T0, T1, T2). */
constexpr unsigned NumBackends = 3;
const ExecBackend *const *allBackends();

} // namespace mssp

#endif // MSSP_EXEC_BACKEND_HH

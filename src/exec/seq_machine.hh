/**
 * @file
 * The sequential reference machine (the formal model's SEQ).
 *
 * SEQ executes a program directly against an ArchState, one
 * instruction at a time. It is the correctness oracle for every MSSP
 * configuration (jumping-refinement tests compare MSSP output and
 * final state against SEQ), the profiler's execution engine, and the
 * single-core performance baseline.
 *
 * The run loop is the simulator's hottest path: it executes through a
 * predecode cache over the machine's own loaded memory and a
 * devirtualized executor instantiation (SeqMachine is final), keeping
 * the PC and retirement counters in locals. The reference stepAt path
 * is differential-tested against it in tests/test_decode_cache.cpp.
 */

#ifndef MSSP_EXEC_SEQ_MACHINE_HH
#define MSSP_EXEC_SEQ_MACHINE_HH

#include <cstdint>
#include <memory>

#include "arch/arch_state.hh"
#include "arch/mmio.hh"
#include "asm/program.hh"
#include "exec/blockjit.hh"
#include "exec/context.hh"
#include "exec/decode_cache.hh"
#include "exec/executor.hh"

namespace mssp
{

/** Result of a (possibly partial) sequential run. */
struct SeqRunResult
{
    bool halted = false;
    bool faulted = false;
    uint64_t instCount = 0;
    uint32_t finalPc = 0;
};

/** The SEQ reference machine. */
class SeqMachine final : public ExecContext
{
  public:
    /** Per-instruction observation hook (profiling, tracing). */
    class Observer
    {
      public:
        virtual ~Observer() = default;

        /** Called after each executed instruction. */
        virtual void onStep(uint32_t pc, const StepResult &res) = 0;
    };

    /** Construct with the program loaded and PC at its entry. The
     *  image is copied into architected memory; @p prog may die.
     *  Executes on the process-default backend unless setBackend is
     *  called. */
    explicit SeqMachine(const Program &prog);

    ~SeqMachine();

    /** Movable (the decode cache rebinds to the moved-in memory and
     *  refills lazily; compiled blocks recompile lazily); not
     *  copyable. */
    SeqMachine(SeqMachine &&other) noexcept
        : state_(std::move(other.state_)),
          device_(std::move(other.device_)),
          outputs_(std::move(other.outputs_)),
          observer_(other.observer_),
          inst_count_(other.inst_count_),
          halted_(other.halted_),
          faulted_(other.faulted_),
          backend_(other.backend_)
    {}

    /** Select the execution tier (resolved for availability). */
    void setBackend(BackendKind kind);

    /** The tier run() executes on (after availability fallback). */
    BackendKind backendKind() const { return backend_; }

    /** The block cache, when the blockjit tier has run (tests). */
    const BlockJit *blockJit() const { return jit_.get(); }

    /**
     * Run until HALT, a fault, or @p max_insts instructions.
     * May be called repeatedly to continue an unfinished run.
     *
     * Supervised runs: when a Supervision is installed on the calling
     * thread (sim/supervisor.hh SupervisionScope), execution proceeds
     * in bounded engine slices on whichever backend tier is selected,
     * polling the budget between slices and throwing StatusError on a
     * trip — always at a slice boundary, so the machine stays
     * architecturally consistent and resumable (clear the token and
     * call run() again to continue). The instruction cap is exact:
     * slices clamp to the budget's remainder. Unsupervised runs take
     * the unchanged single-call hot path.
     */
    SeqRunResult run(uint64_t max_insts);

    /** Execute exactly one instruction. */
    StepResult step();

    ArchState &state() { return state_; }
    const ArchState &state() const { return state_; }

    const OutputStream &outputs() const { return outputs_; }

    uint64_t instCount() const { return inst_count_; }
    bool halted() const { return halted_; }
    bool faulted() const { return faulted_; }

    void setObserver(Observer *obs) { observer_ = obs; }

    /** The predecode cache over this machine's loaded code. */
    const DecodeCache &decodeCache() const { return decode_; }

    // -- ExecContext ------------------------------------------------------
    /** Raw register storage (see ArchState::rawRegs): lets the T2
     *  chain executor skip the r0 guards its compiler enforces. */
    uint32_t *rawRegs() { return state_.rawRegs(); }

    uint32_t readReg(unsigned r) override { return state_.readReg(r); }
    void
    writeReg(unsigned r, uint32_t v) override
    {
        state_.writeReg(r, v);
    }
    uint32_t
    readMem(uint32_t addr) override
    {
        if (isMmio(addr))
            return device_.read(addr);
        return state_.readMem(addr);
    }
    void
    writeMem(uint32_t addr, uint32_t v) override
    {
        if (isMmio(addr)) {
            device_.write(addr, v, outputs_);
            return;
        }
        state_.writeMem(addr, v);
    }
    uint32_t fetch(uint32_t pc) override { return state_.readMem(pc); }
    void
    output(uint16_t port, uint32_t value) override
    {
        outputs_.push_back({port, value});
    }

    const MmioDevice &device() const { return device_; }

  private:
    /** Bookkeeping shared by step() and the batched run loop. */
    void applyStep(const StepResult &res);

    /** The unsupervised run body (the historical hot path). */
    SeqRunResult runLoop(uint64_t max_insts);

    ArchState state_;
    DecodeCache decode_{state_.mem()};
    MmioDevice device_;
    OutputStream outputs_;
    Observer *observer_ = nullptr;
    uint64_t inst_count_ = 0;
    bool halted_ = false;
    bool faulted_ = false;
    BackendKind backend_ = resolveBackend(defaultBackend());
    std::unique_ptr<BlockJit> jit_;  ///< lazy; only on the blockjit tier
};

} // namespace mssp

#endif // MSSP_EXEC_SEQ_MACHINE_HH

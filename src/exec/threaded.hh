/**
 * @file
 * T1 `threaded`: computed-goto threaded-dispatch engine.
 *
 * The classic threaded-interpreter transform: instead of one central
 * switch whose single indirect branch mispredicts across opcode
 * changes, every opcode handler ends in its *own* indirect jump
 * through a per-opcode label table (`&&label`, GNU extension), so the
 * host BTB learns the program's actual opcode-to-opcode transitions.
 * Handlers execute straight out of the predecode cache's decoded
 * pages and are specialized per opcode at compile time by calling the
 * shared semantic helpers (evalAlu / immOperand / rread / rwrite)
 * with a *constant* opcode — the switches constant-fold away, leaving
 * e.g. `out = a + b` for Add, while the semantics still have exactly
 * one source of truth (exec/executor.hh, the T0 oracle).
 *
 * The engine honors the full hook contract of exec/backend.hh; with
 * NullHook all StepResult materialization and verdict plumbing
 * compiles out. When MSSP_HAS_COMPUTED_GOTO is off (non-GNU compiler
 * or -DMSSP_NO_COMPUTED_GOTO) runThreadedEngine degrades to the T0
 * reference engine — same contract, just slower.
 */

#ifndef MSSP_EXEC_THREADED_HH
#define MSSP_EXEC_THREADED_HH

#include "exec/backend.hh"

namespace mssp
{

#if MSSP_HAS_COMPUTED_GOTO

template <class Ctx, class Hook = NullHook>
__attribute__((hot)) EngineResult
runThreadedEngine(DecodeCache &dc, uint32_t pc, uint64_t max_steps,
                  Ctx &ctx, Hook &&hook = {})
{
    using exec_detail::immOperand;
    using exec_detail::rread;
    using exec_detail::rwrite;
    constexpr bool kHooked = kHookedEngine<Hook>;

    // Indexed by Opcode value; must match the enum order exactly
    // (static_asserts below pin the endpoints of each group).
    static const void *const table[] = {
        &&lab_illegal,
        // R-type ALU: Add..Sltu
        &&lab_add, &&lab_sub, &&lab_mul, &&lab_div, &&lab_rem,
        &&lab_and, &&lab_or, &&lab_xor, &&lab_sll, &&lab_srl,
        &&lab_sra, &&lab_slt, &&lab_sltu,
        // I-type ALU: Addi..Srai
        &&lab_addi, &&lab_andi, &&lab_ori, &&lab_xori, &&lab_slti,
        &&lab_sltiu, &&lab_slli, &&lab_srli, &&lab_srai,
        &&lab_lui,
        &&lab_lw, &&lab_sw,
        // Branches: Beq..Bgeu
        &&lab_beq, &&lab_bne, &&lab_blt, &&lab_bge, &&lab_bltu,
        &&lab_bgeu,
        &&lab_jal, &&lab_jalr, &&lab_out, &&lab_nop, &&lab_halt,
        &&lab_fork,
    };
    static_assert(sizeof(table) / sizeof(table[0]) ==
                  static_cast<size_t>(Opcode::NumOpcodes));
    static_assert(static_cast<unsigned>(Opcode::Illegal) == 0);
    static_assert(static_cast<unsigned>(Opcode::Fork) ==
                  static_cast<unsigned>(Opcode::NumOpcodes) - 1);

    EngineResult r;
    const Instruction *ip = nullptr;

// Retire the current step and dispatch the next. `taken` only
// matters to hooks (StepResult::branchTaken).
#define MSSP_T1_FINISH(next_pc, taken)                                \
    do {                                                              \
        if constexpr (kHooked) {                                      \
            StepResult hres;                                          \
            hres.inst = *ip;                                          \
            hres.nextPc = (next_pc);                                  \
            hres.branchTaken = (taken);                               \
            StepVerdict v = hook.postStep(pc, hres);                  \
            if (v == StepVerdict::Discard)                            \
                goto done;                                            \
            ++r.retired;                                              \
            pc = hres.nextPc; /* hook may redirect */                 \
            if (v == StepVerdict::Stop)                               \
                goto done;                                            \
        } else {                                                      \
            ++r.retired;                                              \
            pc = (next_pc);                                           \
        }                                                             \
        goto top;                                                     \
    } while (0)

// Constant-opcode ALU handlers: evalAlu/immOperand fold at compile
// time, so each label body is just the op's expression.
#define MSSP_T1_ALU_RR(name, OP)                                      \
    lab_##name: {                                                     \
        uint32_t a = rread(ctx, ip->rs1);                             \
        uint32_t b = rread(ctx, ip->rs2);                             \
        uint32_t o;                                                   \
        evalAlu(Opcode::OP, a, b, o);                                 \
        rwrite(ctx, ip->rd, o);                                       \
        MSSP_T1_FINISH(pc + 1, false);                                \
    }

#define MSSP_T1_ALU_IMM(name, OP)                                     \
    lab_##name: {                                                     \
        uint32_t a = rread(ctx, ip->rs1);                             \
        uint32_t b = immOperand(Opcode::OP, ip->imm);                 \
        uint32_t o;                                                   \
        evalAlu(Opcode::OP, a, b, o);                                 \
        rwrite(ctx, ip->rd, o);                                       \
        MSSP_T1_FINISH(pc + 1, false);                                \
    }

#define MSSP_T1_BRANCH(name, cmp)                                     \
    lab_##name: {                                                     \
        uint32_t a = rread(ctx, ip->rs1);                             \
        uint32_t b = rread(ctx, ip->rs2);                             \
        auto sa = static_cast<int32_t>(a);                            \
        auto sb = static_cast<int32_t>(b);                            \
        (void)sa; (void)sb;                                           \
        bool taken = (cmp);                                           \
        uint32_t next = taken                                         \
            ? pc + 1 + static_cast<uint32_t>(ip->imm)                 \
            : pc + 1;                                                 \
        MSSP_T1_FINISH(next, taken);                                  \
    }

top:
    if (r.retired >= max_steps)
        goto done;
    ip = &dc.at(pc);
    if constexpr (kHooked) {
        if (!hook.preStep(pc, *ip))
            goto done;
    }
    goto *table[static_cast<size_t>(ip->op)];

    MSSP_T1_ALU_RR(add, Add)
    MSSP_T1_ALU_RR(sub, Sub)
    MSSP_T1_ALU_RR(mul, Mul)
    MSSP_T1_ALU_RR(div, Div)
    MSSP_T1_ALU_RR(rem, Rem)
    MSSP_T1_ALU_RR(and, And)
    MSSP_T1_ALU_RR(or, Or)
    MSSP_T1_ALU_RR(xor, Xor)
    MSSP_T1_ALU_RR(sll, Sll)
    MSSP_T1_ALU_RR(srl, Srl)
    MSSP_T1_ALU_RR(sra, Sra)
    MSSP_T1_ALU_RR(slt, Slt)
    MSSP_T1_ALU_RR(sltu, Sltu)

    MSSP_T1_ALU_IMM(addi, Addi)
    MSSP_T1_ALU_IMM(andi, Andi)
    MSSP_T1_ALU_IMM(ori, Ori)
    MSSP_T1_ALU_IMM(xori, Xori)
    MSSP_T1_ALU_IMM(slti, Slti)
    MSSP_T1_ALU_IMM(sltiu, Sltiu)
    MSSP_T1_ALU_IMM(slli, Slli)
    MSSP_T1_ALU_IMM(srli, Srli)
    MSSP_T1_ALU_IMM(srai, Srai)
    MSSP_T1_ALU_IMM(lui, Lui)

lab_lw: {
        uint32_t addr = rread(ctx, ip->rs1) +
                        static_cast<uint32_t>(ip->imm);
        rwrite(ctx, ip->rd, ctx.readMem(addr));
        MSSP_T1_FINISH(pc + 1, false);
    }
lab_sw: {
        uint32_t addr = rread(ctx, ip->rs1) +
                        static_cast<uint32_t>(ip->imm);
        ctx.writeMem(addr, rread(ctx, ip->rs2));
        MSSP_T1_FINISH(pc + 1, false);
    }

    MSSP_T1_BRANCH(beq, a == b)
    MSSP_T1_BRANCH(bne, a != b)
    MSSP_T1_BRANCH(blt, sa < sb)
    MSSP_T1_BRANCH(bge, sa >= sb)
    MSSP_T1_BRANCH(bltu, a < b)
    MSSP_T1_BRANCH(bgeu, a >= b)

lab_jal: {
        rwrite(ctx, ip->rd, pc + 1);
        MSSP_T1_FINISH(pc + 1 + static_cast<uint32_t>(ip->imm), false);
    }
lab_jalr: {
        uint32_t target = rread(ctx, ip->rs1) +
                          static_cast<uint32_t>(ip->imm);
        rwrite(ctx, ip->rd, pc + 1);
        MSSP_T1_FINISH(target, false);
    }
lab_out: {
        ctx.output(static_cast<uint16_t>(ip->imm), rread(ctx, ip->rs1));
        MSSP_T1_FINISH(pc + 1, false);
    }
lab_nop:
    MSSP_T1_FINISH(pc + 1, false);
lab_fork: {
        ctx.fork(static_cast<uint32_t>(ip->imm));
        MSSP_T1_FINISH(pc + 1, false);
    }

lab_halt:
    // Same ordering as the reference engine: a hooked Discard on the
    // halt step leaves status Ok and the step un-retired.
    if constexpr (kHooked) {
        StepResult hres;
        hres.status = StepStatus::Halted;
        hres.inst = *ip;
        hres.nextPc = pc;
        if (hook.postStep(pc, hres) == StepVerdict::Discard)
            goto done;
    }
    ++r.retired;
    r.status = StepStatus::Halted;
    goto done;

lab_illegal:
    // A faulting attempt is not retired and sees no postStep.
    r.status = StepStatus::Illegal;
    goto done;

done:
    r.pc = pc;
    return r;

#undef MSSP_T1_BRANCH
#undef MSSP_T1_ALU_IMM
#undef MSSP_T1_ALU_RR
#undef MSSP_T1_FINISH
}

#else // !MSSP_HAS_COMPUTED_GOTO

/** Portable fallback: T1 degrades to the T0 reference engine. */
template <class Ctx, class Hook = NullHook>
inline EngineResult
runThreadedEngine(DecodeCache &dc, uint32_t pc, uint64_t max_steps,
                  Ctx &ctx, Hook &&hook = {})
{
    return runRefEngine(dc, pc, max_steps, ctx, hook);
}

#endif // MSSP_HAS_COMPUTED_GOTO

} // namespace mssp

#endif // MSSP_EXEC_THREADED_HH

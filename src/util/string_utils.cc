#include "util/string_utils.hh"

#include <cctype>
#include <cstdlib>

namespace mssp
{

std::string_view
trim(std::string_view s)
{
    size_t b = 0;
    while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    size_t e = s.size();
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string_view>
split(std::string_view s, char delim)
{
    std::vector<std::string_view> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string_view>
splitWs(std::string_view s)
{
    std::vector<std::string_view> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        if (i > start)
            out.push_back(s.substr(start, i - start));
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
parseInt(std::string_view s, int64_t &out)
{
    s = trim(s);
    if (s.empty())
        return false;

    // Character literal: 'a'
    if (s.size() == 3 && s.front() == '\'' && s.back() == '\'') {
        out = static_cast<int64_t>(static_cast<unsigned char>(s[1]));
        return true;
    }

    bool neg = false;
    if (s.front() == '-' || s.front() == '+') {
        neg = s.front() == '-';
        s.remove_prefix(1);
        if (s.empty())
            return false;
    }

    int base = 10;
    if (startsWith(s, "0x") || startsWith(s, "0X")) {
        base = 16;
        s.remove_prefix(2);
    } else if (startsWith(s, "0b") || startsWith(s, "0B")) {
        base = 2;
        s.remove_prefix(2);
    }
    if (s.empty())
        return false;

    uint64_t value = 0;
    for (char c : s) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return false;
        if (digit >= base)
            return false;
        value = value * static_cast<uint64_t>(base) +
                static_cast<uint64_t>(digit);
    }
    out = neg ? -static_cast<int64_t>(value) : static_cast<int64_t>(value);
    return true;
}

std::string
padLeft(const std::string &s, size_t w)
{
    if (s.size() >= w)
        return s;
    return std::string(w - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, size_t w)
{
    if (s.size() >= w)
        return s;
    return s + std::string(w - s.size(), ' ');
}

} // namespace mssp

/**
 * @file
 * Small string helpers used by the assembler and table printers.
 */

#ifndef MSSP_UTIL_STRING_UTILS_HH
#define MSSP_UTIL_STRING_UTILS_HH

#include <string>
#include <string_view>
#include <vector>

namespace mssp
{

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view s);

/** Split on a delimiter character; empty fields are preserved. */
std::vector<std::string_view> split(std::string_view s, char delim);

/** Split on runs of whitespace; empty fields are dropped. */
std::vector<std::string_view> splitWs(std::string_view s);

/** Case-sensitive prefix test. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/**
 * Parse an integer literal: decimal, 0x-hex, 0b-binary, optional
 * leading '-', or a single-quoted character ('a').
 *
 * @param s   text to parse (must be fully consumed)
 * @param out receives the value on success
 * @retval true on success
 */
bool parseInt(std::string_view s, int64_t &out);

/** Left-pad @p s with spaces to width @p w. */
std::string padLeft(const std::string &s, size_t w);

/** Right-pad @p s with spaces to width @p w. */
std::string padRight(const std::string &s, size_t w);

} // namespace mssp

#endif // MSSP_UTIL_STRING_UTILS_HH

/**
 * @file
 * Bit-manipulation helpers used by the ISA encoder/decoder.
 */

#ifndef MSSP_UTIL_BITFIELD_HH
#define MSSP_UTIL_BITFIELD_HH

#include <cstdint>

namespace mssp
{

/** Extract bits [last:first] (inclusive) of @p val. */
constexpr uint32_t
bits(uint32_t val, unsigned last, unsigned first)
{
    unsigned nbits = last - first + 1;
    uint32_t mask = (nbits >= 32) ? 0xffffffffu : ((1u << nbits) - 1);
    return (val >> first) & mask;
}

/** Insert the low (last-first+1) bits of @p bitsVal into [last:first]. */
constexpr uint32_t
insertBits(uint32_t val, unsigned last, unsigned first, uint32_t bits_val)
{
    unsigned nbits = last - first + 1;
    uint32_t mask = (nbits >= 32) ? 0xffffffffu : ((1u << nbits) - 1);
    return (val & ~(mask << first)) | ((bits_val & mask) << first);
}

/** Sign-extend the low @p nbits bits of @p val to a signed 32-bit int. */
constexpr int32_t
sext(uint32_t val, unsigned nbits)
{
    uint32_t sign_bit = 1u << (nbits - 1);
    uint32_t mask = (nbits >= 32) ? 0xffffffffu : ((1u << nbits) - 1);
    uint32_t v = val & mask;
    return static_cast<int32_t>((v ^ sign_bit) - sign_bit);
}

/** @return true iff @p val fits in an @p nbits-wide signed field. */
constexpr bool
fitsSigned(int64_t val, unsigned nbits)
{
    int64_t lo = -(int64_t{1} << (nbits - 1));
    int64_t hi = (int64_t{1} << (nbits - 1)) - 1;
    return val >= lo && val <= hi;
}

/** @return true iff @p val fits in an @p nbits-wide unsigned field. */
constexpr bool
fitsUnsigned(uint64_t val, unsigned nbits)
{
    return val < (uint64_t{1} << nbits);
}

} // namespace mssp

#endif // MSSP_UTIL_BITFIELD_HH

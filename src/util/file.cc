#include "util/file.hh"

#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace mssp
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '%s' for reading", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &contents)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    out << contents;
    if (!out)
        fatal("write to '%s' failed", path.c_str());
}

} // namespace mssp

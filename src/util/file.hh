/**
 * @file
 * Minimal file I/O helpers for the CLI tools.
 */

#ifndef MSSP_UTIL_FILE_HH
#define MSSP_UTIL_FILE_HH

#include <string>

namespace mssp
{

/** Read a whole file; fatal() if it cannot be opened. */
std::string readFile(const std::string &path);

/** Write a whole file; fatal() on failure. */
void writeFile(const std::string &path, const std::string &contents);

} // namespace mssp

#endif // MSSP_UTIL_FILE_HH

#include "cfg/cfg.hh"

#include <algorithm>
#include <deque>

#include "sim/logging.hh"

namespace mssp
{

namespace
{

/** Decoded instruction stream info gathered during discovery. */
struct Discovery
{
    std::map<uint32_t, Instruction> code;   // reachable pc -> inst
    std::set<uint32_t> leaders;
};

/** Successor PCs of the instruction at @p pc (for discovery). */
void
instSuccessors(uint32_t pc, const Instruction &inst,
               std::vector<uint32_t> &out)
{
    out.clear();
    switch (inst.op) {
      case Opcode::Halt:
      case Opcode::Illegal:
        return;
      case Opcode::Jal:
        out.push_back(pc + 1 + static_cast<uint32_t>(inst.imm));
        // A call returns: its return point is reachable code.
        if (inst.rd != 0)
            out.push_back(pc + 1);
        return;
      case Opcode::Jalr:
        // Unknown target; returns are discovered via the call site.
        return;
      default:
        break;
    }
    if (isCondBranch(inst.op)) {
        out.push_back(pc + 1 + static_cast<uint32_t>(inst.imm));
        out.push_back(pc + 1);
        return;
    }
    out.push_back(pc + 1);
}

Discovery
discover(const Program &prog, uint32_t entry,
         const std::vector<uint32_t> &extra_roots)
{
    Discovery d;
    d.leaders.insert(entry);
    std::deque<uint32_t> work{entry};
    for (uint32_t root : extra_roots) {
        d.leaders.insert(root);
        work.push_back(root);
    }
    std::vector<uint32_t> succs;
    while (!work.empty()) {
        uint32_t pc = work.front();
        work.pop_front();
        if (d.code.count(pc))
            continue;
        Instruction inst = decode(prog.word(pc));
        d.code.emplace(pc, inst);
        instSuccessors(pc, inst, succs);
        bool is_control = isControl(inst.op) ||
                          inst.op == Opcode::Halt ||
                          inst.op == Opcode::Illegal;
        for (uint32_t s : succs) {
            if (is_control)
                d.leaders.insert(s);
            if (!d.code.count(s))
                work.push_back(s);
        }
    }
    return d;
}

} // anonymous namespace

Cfg
Cfg::build(const Program &prog, uint32_t entry,
           const std::vector<uint32_t> &extra_roots)
{
    Cfg cfg;
    cfg.entry_ = entry;

    Discovery d = discover(prog, entry, extra_roots);

    // A leader is also needed where straight-line code flows into a
    // branch target from above.
    std::set<uint32_t> leaders = d.leaders;

    // Partition into blocks.
    for (uint32_t leader : leaders) {
        if (!d.code.count(leader))
            continue;   // target of a jump into unmapped memory
        BasicBlock bb;
        bb.start = leader;
        uint32_t pc = leader;
        while (true) {
            auto it = d.code.find(pc);
            if (it == d.code.end()) {
                // Ran off into undecoded memory: treat as fault.
                bb.term = TermKind::Fault;
                break;
            }
            const Instruction &inst = it->second;
            // A new leader (other than our own start) ends the block.
            if (pc != leader && leaders.count(pc)) {
                bb.term = TermKind::FallThrough;
                bb.fallthrough = pc;
                break;
            }
            bb.insts.push_back(inst);
            if (inst.op == Opcode::Halt) {
                bb.term = TermKind::Halt;
                break;
            }
            if (inst.op == Opcode::Illegal) {
                bb.term = TermKind::Fault;
                break;
            }
            if (inst.op == Opcode::Jal) {
                bb.term = TermKind::Jump;
                bb.takenTarget = pc + 1 +
                                 static_cast<uint32_t>(inst.imm);
                bb.isCall = inst.rd != 0;
                bb.fallthrough = pc + 1;
                break;
            }
            if (inst.op == Opcode::Jalr) {
                bb.term = TermKind::IndirectJump;
                break;
            }
            if (isCondBranch(inst.op)) {
                bb.term = TermKind::CondBranch;
                bb.takenTarget = pc + 1 +
                                 static_cast<uint32_t>(inst.imm);
                bb.fallthrough = pc + 1;
                break;
            }
            ++pc;
        }

        // Successor list.
        switch (bb.term) {
          case TermKind::FallThrough:
            bb.succs.push_back(bb.fallthrough);
            break;
          case TermKind::CondBranch:
            bb.succs.push_back(bb.takenTarget);
            if (bb.fallthrough != bb.takenTarget)
                bb.succs.push_back(bb.fallthrough);
            break;
          case TermKind::Jump:
            bb.succs.push_back(bb.takenTarget);
            // A call returns: include the return point as a successor
            // so loops spanning calls are detected and dataflow stays
            // conservative. (Control really flows via the callee's
            // jalr, but adding the edge only over-approximates.)
            if (bb.isCall)
                bb.succs.push_back(bb.fallthrough);
            break;
          case TermKind::IndirectJump:
          case TermKind::Halt:
          case TermKind::Fault:
            break;
        }
        cfg.blocks_.emplace(leader, std::move(bb));
    }

    // Predecessors.
    for (const auto &[start, bb] : cfg.blocks_) {
        for (uint32_t s : bb.succs) {
            if (cfg.blocks_.count(s))
                cfg.preds_[s].push_back(start);
        }
    }

    cfg.roots_.push_back(entry);
    for (uint32_t root : extra_roots) {
        if (root != entry && cfg.blocks_.count(root))
            cfg.roots_.push_back(root);
    }

    cfg.computeLoopHeaders();
    return cfg;
}

const std::vector<uint32_t> &
Cfg::preds(uint32_t start) const
{
    static const std::vector<uint32_t> empty;
    auto it = preds_.find(start);
    return it == preds_.end() ? empty : it->second;
}

void
Cfg::computeLoopHeaders()
{
    // Iterative DFS with an explicit on-stack marker.
    enum class Color : uint8_t { White, Grey, Black };
    std::map<uint32_t, Color> color;
    for (const auto &[start, bb] : blocks_)
        color[start] = Color::White;

    struct Frame
    {
        uint32_t block;
        size_t nextSucc;
    };
    std::vector<Frame> stack;
    if (!blocks_.count(entry_))
        return;
    stack.push_back({entry_, 0});
    color[entry_] = Color::Grey;

    while (!stack.empty()) {
        Frame &f = stack.back();
        const BasicBlock &bb = blocks_.at(f.block);
        if (f.nextSucc < bb.succs.size()) {
            uint32_t s = bb.succs[f.nextSucc++];
            auto it = color.find(s);
            if (it == color.end())
                continue;   // edge to a nonexistent block
            if (it->second == Color::Grey) {
                loop_headers_.insert(s);
            } else if (it->second == Color::White) {
                it->second = Color::Grey;
                stack.push_back({s, 0});
            }
        } else {
            color[f.block] = Color::Black;
            stack.pop_back();
        }
    }
}

size_t
Cfg::numInsts() const
{
    size_t n = 0;
    for (const auto &[start, bb] : blocks_)
        n += bb.insts.size();
    return n;
}

std::string
Cfg::toString() const
{
    static const char *term_names[] = {
        "fallthrough", "condbranch", "jump", "indirect", "halt",
        "fault",
    };
    std::string out;
    for (const auto &[start, bb] : blocks_) {
        out += strfmt("block 0x%x: %zu insts, term=%s", start,
                      bb.insts.size(),
                      term_names[static_cast<int>(bb.term)]);
        if (loop_headers_.count(start))
            out += " [loop header]";
        out += " ->";
        for (uint32_t s : bb.succs)
            out += strfmt(" 0x%x", s);
        out += '\n';
    }
    return out;
}

void
instDefUse(const Instruction &inst, RegMask &def, RegMask &use)
{
    def = 0;
    use = 0;
    uint8_t srcs[2];
    unsigned n = sourceRegs(inst, srcs);
    for (unsigned i = 0; i < n; ++i)
        use |= 1u << srcs[i];
    if (writesReg(inst))
        def |= 1u << inst.rd;
    // r0 is not a real register.
    def &= ~1u;
    use &= ~1u;
}

RegMask
liveBeforeInst(const Instruction &inst, RegMask live_after)
{
    RegMask def, use;
    instDefUse(inst, def, use);
    return (live_after & ~def) | use;
}

// computeLiveness(Cfg) lives in src/analysis/liveness.cc, on the
// shared dataflow solver.

} // namespace mssp

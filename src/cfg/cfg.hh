/**
 * @file
 * Control-flow graph over a μRISC binary.
 *
 * The CFG is reconstructed by decoding reachable code from the entry
 * point: branch targets, jump targets, call targets and call return
 * points all become block leaders. Indirect jumps (jalr) have unknown
 * targets; the CFG treats them as graph exits and the liveness
 * analysis assumes everything is live across them, which is the
 * conservative choice for the distiller (DESIGN.md §3.9: indirect
 * control flow is only used for returns in our workloads, and return
 * points are discovered via the corresponding call).
 */

#ifndef MSSP_CFG_CFG_HH
#define MSSP_CFG_CFG_HH

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "asm/program.hh"
#include "isa/isa.hh"

namespace mssp
{

/** How a basic block transfers control. */
enum class TermKind : uint8_t
{
    FallThrough,    ///< runs into the next block
    CondBranch,     ///< two successors: taken target + fallthrough
    Jump,           ///< jal (unconditional; may also be a call)
    IndirectJump,   ///< jalr: unknown target, treated as an exit
    Halt,           ///< halt instruction
    Fault,          ///< undecodable instruction terminates the block
};

/** A maximal straight-line sequence of instructions. */
struct BasicBlock
{
    uint32_t start = 0;                 ///< PC of the first instruction
    std::vector<Instruction> insts;     ///< all instructions, in order
    TermKind term = TermKind::FallThrough;

    /** Taken target (CondBranch) or jump target (Jump). */
    uint32_t takenTarget = 0;
    /** Fallthrough PC (CondBranch / FallThrough / call return). */
    uint32_t fallthrough = 0;
    /** True when the terminator is a jal with rd != 0 (a call). */
    bool isCall = false;

    /** All successor block-start PCs. */
    std::vector<uint32_t> succs;

    /** PC of the i-th instruction. */
    uint32_t pcOf(size_t i) const
    {
        return start + static_cast<uint32_t>(i);
    }

    /** PC one past the last instruction. */
    uint32_t
    endPc() const
    {
        return start + static_cast<uint32_t>(insts.size());
    }
};

/** The control-flow graph of one program. */
class Cfg
{
  public:
    /**
     * Build the CFG of @p prog starting at @p entry.
     *
     * @p extra_roots adds more discovery roots (and block leaders):
     * code only reachable through an indirect transfer whose targets
     * the caller knows, e.g. the restart points of a distilled image
     * (mssp-lint) whose calls are laid out as plain jumps.
     */
    static Cfg build(const Program &prog, uint32_t entry,
                     const std::vector<uint32_t> &extra_roots = {});

    /** Entry plus the extra roots that named existing code. */
    const std::vector<uint32_t> &roots() const { return roots_; }

    const std::map<uint32_t, BasicBlock> &blocks() const
    {
        return blocks_;
    }

    bool hasBlock(uint32_t start) const { return blocks_.count(start); }

    const BasicBlock &
    blockAt(uint32_t start) const
    {
        return blocks_.at(start);
    }

    /** Predecessor block-start PCs of a block. */
    const std::vector<uint32_t> &preds(uint32_t start) const;

    uint32_t entry() const { return entry_; }

    /**
     * Loop headers: targets of back edges found by DFS from the
     * entry (an edge u->v is a back edge when v is on the DFS stack).
     */
    const std::set<uint32_t> &loopHeaders() const
    {
        return loop_headers_;
    }

    /** Total number of instructions across all blocks. */
    size_t numInsts() const;

    /** Multi-line dump (block leaders, terminators, successors). */
    std::string toString() const;

  private:
    std::map<uint32_t, BasicBlock> blocks_;
    std::map<uint32_t, std::vector<uint32_t>> preds_;
    std::set<uint32_t> loop_headers_;
    std::vector<uint32_t> roots_;
    uint32_t entry_ = 0;

    void computeLoopHeaders();
};

/** Register bitmask: bit r set means register r is in the set. */
using RegMask = uint32_t;

/** Per-block liveness results. */
struct BlockLiveness
{
    RegMask liveIn = 0;
    RegMask liveOut = 0;
};

/**
 * Global backward register-liveness analysis.
 *
 * Indirect jumps and faults are treated as "all registers live";
 * halt blocks have empty live-out (memory effects are never subject
 * to liveness). Implemented on the shared dataflow solver in
 * src/analysis/liveness.cc.
 *
 * @return per-block live-in/live-out masks keyed by block start PC
 */
std::map<uint32_t, BlockLiveness> computeLiveness(const Cfg &cfg);

/** def/use masks of one instruction (for in-block backward walks). */
void instDefUse(const Instruction &inst, RegMask &def, RegMask &use);

/** Transfer function: live set before @p inst given the set after. */
RegMask liveBeforeInst(const Instruction &inst, RegMask live_after);

} // namespace mssp

#endif // MSSP_CFG_CFG_HH

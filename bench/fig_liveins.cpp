/**
 * @file
 * E4 — live-in prediction accuracy: how many live-in cells the
 * verify/commit unit checks per benchmark, what fraction mismatch,
 * and the checkpoint/live-in set sizes.
 *
 * Expected shape: cell-level mismatch rates in the low single digits
 * per mille for the honest distiller; live-in sets of tens of cells
 * per ~150-instruction task.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "eval/experiment.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"

using namespace mssp;

int
main(int argc, char **argv)
{
    setQuiet(true);
    unsigned jobs = benchJobs(argc, argv, "fig_liveins");
    Table table({"benchmark", "cells checked", "mismatched",
                 "mismatch rate", "archReads/task", "tasks"});

    auto workloads = specAnalogues();
    std::vector<std::function<WorkloadRun()>> work;
    for (const auto &wl : workloads) {
        work.push_back([&wl] {
            MsspConfig cfg;
            return runWorkload(wl, cfg,
                               DistillerOptions::paperPreset());
        });
    }

    for (const WorkloadRun &run :
         runSharded<WorkloadRun>(jobs, std::move(work))) {
        const MsspCounters &c = run.counters;
        double rate = c.liveInCellsChecked
            ? static_cast<double>(c.liveInCellsMismatched) /
                  static_cast<double>(c.liveInCellsChecked)
            : 0.0;
        double arch_reads_per_task = c.tasksCommitted
            ? static_cast<double>(c.archReads) /
                  static_cast<double>(c.tasksCommitted)
            : 0.0;
        table.addRow({
            run.name,
            std::to_string(c.liveInCellsChecked),
            std::to_string(c.liveInCellsMismatched),
            fmtPct(rate),
            fmt2(arch_reads_per_task),
            std::to_string(c.tasksCommitted),
        });
    }

    std::fputs(table.render(
        "E4: live-in prediction accuracy at the verify/commit "
        "unit").c_str(), stdout);
    return 0;
}

/**
 * @file
 * E2 — "MSSP speedup over single-processor baseline" (the paper's
 * headline figure). One series per slave count (2/4/8), one row per
 * SPECint analogue, plus the geometric mean.
 *
 * Expected shape (EXPERIMENTS.md): geomean speedup meaningfully above
 * 1 at 8 slaves, best workloads well above, low-distillability
 * workloads (eon-like) near 1.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "eval/experiment.hh"
#include "sim/logging.hh"

using namespace mssp;

int
main()
{
    setQuiet(true);
    const std::vector<unsigned> slave_counts = {2, 4, 8};
    auto workloads = specAnalogues();

    Table table({"benchmark", "insts", "distill",
                 "2 slaves", "4 slaves", "8 slaves", "ok"});
    std::vector<std::vector<double>> speedups(slave_counts.size());

    for (const auto &wl : workloads) {
        PreparedWorkload prepared = prepare(
            wl.refSource, wl.trainSource,
            DistillerOptions::paperPreset());
        std::vector<std::string> row{wl.name, "", "", "", "", "", ""};
        bool all_ok = true;
        for (size_t i = 0; i < slave_counts.size(); ++i) {
            MsspConfig cfg;
            cfg.numSlaves = slave_counts[i];
            cfg.maxInFlightTasks = 2 * slave_counts[i];
            WorkloadRun run = runPrepared(wl.name, prepared, cfg);
            all_ok &= run.ok;
            speedups[i].push_back(run.speedup);
            row[3 + i] = fmt2(run.speedup);
            if (i == 0) {
                row[1] = std::to_string(run.seqInsts);
                row[2] = fmtPct(run.distillRatio);
            }
        }
        row[6] = all_ok ? "yes" : "NO";
        table.addRow(row);
    }

    std::vector<std::string> gm_row{"geomean", "", "", "", "", "", ""};
    for (size_t i = 0; i < slave_counts.size(); ++i)
        gm_row[3 + i] = fmt2(geomean(speedups[i]));
    table.addRow(gm_row);

    std::fputs(table.render("E2: MSSP speedup over 1-cpu baseline "
                            "(distill = master/original dynamic "
                            "path)").c_str(),
               stdout);
    return 0;
}

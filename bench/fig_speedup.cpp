/**
 * @file
 * E2 — "MSSP speedup over single-processor baseline" (the paper's
 * headline figure). One series per slave count (2/4/8), one row per
 * SPECint analogue, plus the geometric mean.
 *
 * Expected shape (EXPERIMENTS.md): geomean speedup meaningfully above
 * 1 at 8 slaves, best workloads well above, low-distillability
 * workloads (eon-like) near 1.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "eval/experiment.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"

using namespace mssp;

int
main(int argc, char **argv)
{
    setQuiet(true);
    unsigned jobs = benchJobs(argc, argv, "fig_speedup");
    const std::vector<unsigned> slave_counts = {2, 4, 8};
    auto workloads = specAnalogues();
    auto prepared = prepareAll(workloads,
                               DistillerOptions::paperPreset(), jobs);

    Table table({"benchmark", "insts", "distill",
                 "2 slaves", "4 slaves", "8 slaves", "ok"});
    std::vector<std::vector<double>> speedups(slave_counts.size());

    // One job per (workload, slave count) point, merged in canonical
    // order so the table is identical for any --jobs.
    std::vector<std::function<WorkloadRun()>> work;
    for (size_t w = 0; w < workloads.size(); ++w) {
        for (unsigned slaves : slave_counts) {
            work.push_back([&workloads, &prepared, w, slaves] {
                MsspConfig cfg;
                cfg.numSlaves = slaves;
                cfg.maxInFlightTasks = 2 * slaves;
                return runPrepared(workloads[w].name, prepared[w],
                                   cfg);
            });
        }
    }
    std::vector<WorkloadRun> runs =
        runSharded<WorkloadRun>(jobs, std::move(work));

    for (size_t w = 0; w < workloads.size(); ++w) {
        std::vector<std::string> row{workloads[w].name, "", "", "",
                                     "", "", ""};
        bool all_ok = true;
        for (size_t i = 0; i < slave_counts.size(); ++i) {
            const WorkloadRun &run = runs[w * slave_counts.size() + i];
            all_ok &= run.ok;
            speedups[i].push_back(run.speedup);
            row[3 + i] = fmt2(run.speedup);
            if (i == 0) {
                row[1] = std::to_string(run.seqInsts);
                row[2] = fmtPct(run.distillRatio);
            }
        }
        row[6] = all_ok ? "yes" : "NO";
        table.addRow(row);
    }

    std::vector<std::string> gm_row{"geomean", "", "", "", "", "", ""};
    for (size_t i = 0; i < slave_counts.size(); ++i)
        gm_row[3 + i] = fmt2(geomean(speedups[i]));
    table.addRow(gm_row);

    std::fputs(table.render("E2: MSSP speedup over 1-cpu baseline "
                            "(distill = master/original dynamic "
                            "path)").c_str(),
               stdout);
    return 0;
}

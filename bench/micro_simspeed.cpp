/**
 * @file
 * M1 — simulator throughput microbenchmarks (google-benchmark): the
 * SEQ interpreter, the profiler, the distiller and the full MSSP
 * machine, in simulated instructions (or distillations) per second.
 *
 * Besides the timing numbers, every benchmark exports `sim_*`
 * counters (simulated instructions, cycles, tasks, ...). Those are
 * pure simulation outputs — identical on any host at any load — so
 * tools/bench_compare.py --counters-only can gate CI on them exactly
 * while treating the wall-clock throughput as a non-gating artifact
 * (shared runners are far too noisy to gate on time).
 */

#include <benchmark/benchmark.h>

#include "core/mssp_api.hh"
#include "sim/logging.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mssp;

const Workload &
benchWorkload()
{
    static Workload wl = workloadByName("parser", 0.3);
    return wl;
}

void
BM_SeqInterpreter(benchmark::State &state, BackendKind backend)
{
    setQuiet(true);
    Program prog = assemble(benchWorkload().refSource);
    uint64_t insts = 0;
    uint64_t per_run = 0;
    for (auto _ : state) {
        // Time run() only: machine construction (program load into
        // paged memory) and teardown are identical fixed costs on
        // every tier and would dilute the interpreter comparison.
        // Each iteration still starts from a cold machine, so T2's
        // training and compile passes stay inside the timed region.
        state.PauseTiming();
        auto m = std::make_unique<SeqMachine>(prog);
        m->setBackend(backend);
        state.ResumeTiming();
        m->run(100000000);
        insts += m->instCount();
        per_run = m->instCount();
        benchmark::DoNotOptimize(m->state().pc());
        state.PauseTiming();
        m.reset();
        state.ResumeTiming();
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
    // Deterministic simulation outputs (per run, not per batch).
    // sim_insts must be byte-identical across the three tiers: the
    // backends execute the same architectural instruction stream
    // (bench_compare.py gates on it).
    state.counters["sim_insts"] = static_cast<double>(per_run);
}
BENCHMARK_CAPTURE(BM_SeqInterpreter, ref, BackendKind::Ref);
BENCHMARK_CAPTURE(BM_SeqInterpreter, threaded, BackendKind::Threaded);
BENCHMARK_CAPTURE(BM_SeqInterpreter, blockjit, BackendKind::BlockJit);

void
BM_Profiler(benchmark::State &state)
{
    setQuiet(true);
    Program prog = assemble(benchWorkload().trainSource);
    uint64_t insts = 0;
    uint64_t per_run = 0;
    for (auto _ : state) {
        ProfileData prof = profileProgram(prog, 100000000);
        insts += prof.totalInsts;
        per_run = prof.totalInsts;
        benchmark::DoNotOptimize(prof.totalInsts);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
    state.counters["sim_insts"] = static_cast<double>(per_run);
}
BENCHMARK(BM_Profiler);

void
BM_Distiller(benchmark::State &state)
{
    setQuiet(true);
    Program prog = assemble(benchWorkload().refSource);
    ProfileData prof = profileProgram(
        assemble(benchWorkload().trainSource), 100000000);
    uint64_t tasks = 0;
    for (auto _ : state) {
        DistilledProgram d = distill(
            prog, prof, DistillerOptions::paperPreset());
        tasks = d.taskMap.size();
        benchmark::DoNotOptimize(d.taskMap.size());
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["sim_tasks"] = static_cast<double>(tasks);
}
BENCHMARK(BM_Distiller);

void
BM_MsspMachine(benchmark::State &state, bool speculate)
{
    setQuiet(true);
    PreparedWorkload p = prepare(benchWorkload().refSource,
                                 benchWorkload().trainSource,
                                 DistillerOptions::paperPreset());
    if (speculate)
        p.dist = distillSpeculated(p.orig, p.profile,
                                   DistillerOptions::paperPreset(),
                                   SpeculateOptions{});
    uint64_t insts = 0;
    uint64_t per_run = 0;
    uint64_t cycles = 0;
    uint64_t master = 0;
    for (auto _ : state) {
        MsspMachine machine(p.orig, p.dist, MsspConfig{});
        MsspResult r = machine.run(100000000ull);
        insts += r.committedInsts;
        per_run = r.committedInsts;
        cycles = r.cycles;
        master = machine.counters().masterInsts;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
    state.counters["sim_insts"] = static_cast<double>(per_run);
    state.counters["sim_cycles"] = static_cast<double>(cycles);
    // The value-speculation payoff is a shorter master path;
    // committed insts stay identical (same architected work). Both
    // variants export the counter so the gate pins the delta.
    state.counters["sim_master_insts"] = static_cast<double>(master);
    if (speculate)
        state.counters["sim_baked"] =
            static_cast<double>(p.dist.specEdits.size());
}
BENCHMARK_CAPTURE(BM_MsspMachine, base, false);
BENCHMARK_CAPTURE(BM_MsspMachine, speculated, true);

void
BM_Assembler(benchmark::State &state)
{
    setQuiet(true);
    const std::string &src = benchWorkload().refSource;
    uint64_t words = 0;
    for (auto _ : state) {
        Program p = assemble(src);
        words = p.sizeWords();
        benchmark::DoNotOptimize(p.sizeWords());
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["sim_words"] = static_cast<double>(words);
}
BENCHMARK(BM_Assembler);

} // anonymous namespace

BENCHMARK_MAIN();

/**
 * @file
 * M1 — simulator throughput microbenchmarks (google-benchmark): the
 * SEQ interpreter, the profiler, the distiller and the full MSSP
 * machine, in simulated instructions (or distillations) per second.
 */

#include <benchmark/benchmark.h>

#include "core/mssp_api.hh"
#include "sim/logging.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mssp;

const Workload &
benchWorkload()
{
    static Workload wl = workloadByName("parser", 0.3);
    return wl;
}

void
BM_SeqInterpreter(benchmark::State &state)
{
    setQuiet(true);
    Program prog = assemble(benchWorkload().refSource);
    uint64_t insts = 0;
    for (auto _ : state) {
        SeqMachine m(prog);
        m.run(100000000);
        insts += m.instCount();
        benchmark::DoNotOptimize(m.state().pc());
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_SeqInterpreter);

void
BM_Profiler(benchmark::State &state)
{
    setQuiet(true);
    Program prog = assemble(benchWorkload().trainSource);
    uint64_t insts = 0;
    for (auto _ : state) {
        ProfileData prof = profileProgram(prog, 100000000);
        insts += prof.totalInsts;
        benchmark::DoNotOptimize(prof.totalInsts);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_Profiler);

void
BM_Distiller(benchmark::State &state)
{
    setQuiet(true);
    Program prog = assemble(benchWorkload().refSource);
    ProfileData prof = profileProgram(
        assemble(benchWorkload().trainSource), 100000000);
    for (auto _ : state) {
        DistilledProgram d = distill(
            prog, prof, DistillerOptions::paperPreset());
        benchmark::DoNotOptimize(d.taskMap.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Distiller);

void
BM_MsspMachine(benchmark::State &state)
{
    setQuiet(true);
    PreparedWorkload p = prepare(benchWorkload().refSource,
                                 benchWorkload().trainSource,
                                 DistillerOptions::paperPreset());
    uint64_t insts = 0;
    for (auto _ : state) {
        MsspMachine machine(p.orig, p.dist, MsspConfig{});
        MsspResult r = machine.run(100000000ull);
        insts += r.committedInsts;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_MsspMachine);

void
BM_Assembler(benchmark::State &state)
{
    setQuiet(true);
    const std::string &src = benchWorkload().refSource;
    for (auto _ : state) {
        Program p = assemble(src);
        benchmark::DoNotOptimize(p.sizeWords());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Assembler);

} // anonymous namespace

BENCHMARK_MAIN();

/**
 * @file
 * E6 — sensitivity to processor count: speedup vs number of slaves.
 *
 * Expected shape: speedup rises with slave count and then saturates
 * at the master-limited bound (original path / distilled path); the
 * knee falls at 2-4 slaves for our distillation strengths, higher for
 * strongly distilled workloads (perlbmk).
 */

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "eval/experiment.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"

using namespace mssp;

int
main(int argc, char **argv)
{
    setQuiet(true);
    unsigned jobs = benchJobs(argc, argv, "fig_scaling");
    const std::vector<unsigned> slave_counts = {1, 2, 3, 4, 6, 8, 12,
                                                16};
    const std::vector<std::string> names = {"perlbmk", "mcf",
                                            "parser", "bzip2"};

    std::vector<std::string> headers = {"slaves"};
    for (const auto &n : names)
        headers.push_back(n);
    Table table(headers);

    // Prepare once per workload; sweep the machine.
    std::vector<Workload> workloads;
    for (const auto &name : names)
        workloads.push_back(workloadByName(name));
    auto prepared = prepareAll(workloads,
                               DistillerOptions::paperPreset(), jobs);

    std::vector<std::function<WorkloadRun()>> work;
    for (unsigned slaves : slave_counts) {
        for (size_t i = 0; i < names.size(); ++i) {
            work.push_back([&names, &prepared, slaves, i] {
                MsspConfig cfg;
                cfg.numSlaves = slaves;
                cfg.maxInFlightTasks = std::max(2 * slaves, 8u);
                return runPrepared(names[i], prepared[i], cfg);
            });
        }
    }
    std::vector<WorkloadRun> runs =
        runSharded<WorkloadRun>(jobs, std::move(work));

    size_t next = 0;
    for (unsigned slaves : slave_counts) {
        std::vector<std::string> row = {std::to_string(slaves)};
        for (size_t i = 0; i < names.size(); ++i) {
            const WorkloadRun &run = runs[next++];
            row.push_back(run.ok ? fmt2(run.speedup) : "FAIL");
        }
        table.addRow(row);
    }

    std::fputs(table.render(
        "E6: speedup vs number of slave processors").c_str(), stdout);
    return 0;
}

/**
 * @file
 * E6 — sensitivity to processor count: speedup vs number of slaves.
 *
 * Expected shape: speedup rises with slave count and then saturates
 * at the master-limited bound (original path / distilled path); the
 * knee falls at 2-4 slaves for our distillation strengths, higher for
 * strongly distilled workloads (perlbmk).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "eval/experiment.hh"
#include "sim/logging.hh"

using namespace mssp;

int
main()
{
    setQuiet(true);
    const std::vector<unsigned> slave_counts = {1, 2, 3, 4, 6, 8, 12,
                                                16};
    const std::vector<std::string> names = {"perlbmk", "mcf",
                                            "parser", "bzip2"};

    std::vector<std::string> headers = {"slaves"};
    for (const auto &n : names)
        headers.push_back(n);
    Table table(headers);

    // Prepare once per workload; sweep the machine.
    std::vector<PreparedWorkload> prepared;
    for (const auto &name : names) {
        Workload wl = workloadByName(name);
        prepared.push_back(prepare(wl.refSource, wl.trainSource,
                                   DistillerOptions::paperPreset()));
    }

    for (unsigned slaves : slave_counts) {
        std::vector<std::string> row = {std::to_string(slaves)};
        for (size_t i = 0; i < names.size(); ++i) {
            MsspConfig cfg;
            cfg.numSlaves = slaves;
            cfg.maxInFlightTasks = std::max(2 * slaves, 8u);
            WorkloadRun run = runPrepared(names[i], prepared[i], cfg);
            row.push_back(run.ok ? fmt2(run.speedup) : "FAIL");
        }
        table.addRow(row);
    }

    std::fputs(table.render(
        "E6: speedup vs number of slave processors").c_str(), stdout);
    return 0;
}

/**
 * @file
 * E9 — approximation aggressiveness: speedup and squash rate vs the
 * branch-prune bias threshold θ, with and without profile-value
 * speculation (the risky form that can bake training data into the
 * distilled binary).
 *
 * Expected shape: the accuracy/coverage tradeoff. θ = 1.0 (prune only
 * never-observed directions) is safe; lowering θ first changes little
 * (the extra pruned branches are mostly harmless), then causes
 * squash storms at loop exits and speedup collapses toward (or below)
 * 1. Profile-value speculation adds reduction but also adds
 * mispredictions when train and ref data differ.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "eval/experiment.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"

using namespace mssp;

int
main(int argc, char **argv)
{
    setQuiet(true);
    unsigned jobs = benchJobs(argc, argv, "fig_aggressiveness");
    const std::vector<double> thetas = {1.0, 0.9999, 0.999, 0.99,
                                        0.95, 0.85, 0.7};
    const std::vector<std::string> names = {"perlbmk", "vpr", "gcc",
                                            "mcf", "bzip2"};

    Table table({"theta", "vspec", "speedup(gm)", "dyn ratio",
                 "squash/1k", "ok"});

    // One job per (vspec arm, theta, workload), canonical order.
    std::vector<std::function<WorkloadRun()>> work;
    for (bool risky_vspec : {false, true}) {
        for (double theta : thetas) {
            DistillerOptions dopts = DistillerOptions::paperPreset();
            dopts.biasThreshold = theta;
            dopts.valueSpecFromProfile = risky_vspec;
            if (risky_vspec) {
                // The risky arm also lowers the invariance bar, so
                // merely-mostly-invariant loads get baked in.
                dopts.valueSpecThreshold = 0.9;
            }
            for (const auto &name : names) {
                work.push_back([name, dopts] {
                    Workload wl = workloadByName(name);
                    MsspConfig cfg;
                    return runWorkload(wl, cfg, dopts);
                });
            }
        }
    }
    std::vector<WorkloadRun> runs =
        runSharded<WorkloadRun>(jobs, std::move(work));

    size_t next = 0;
    for (bool risky_vspec : {false, true}) {
        for (double theta : thetas) {
            std::vector<double> speedups, ratios;
            uint64_t squashes = 0, forked = 0;
            bool all_ok = true;
            for (size_t i = 0; i < names.size(); ++i) {
                const WorkloadRun &run = runs[next++];
                all_ok &= run.ok;
                speedups.push_back(run.speedup);
                ratios.push_back(run.distillRatio);
                squashes += run.counters.squashEvents;
                forked += run.counters.tasksForked;
            }
            double squash_rate = forked
                ? 1000.0 * static_cast<double>(squashes) /
                      static_cast<double>(forked)
                : 0.0;
            table.addRow({strfmt("%.4f", theta),
                          risky_vspec ? "profile" : "image",
                          fmt2(geomean(speedups)),
                          fmtPct(geomean(ratios)), fmt2(squash_rate),
                          all_ok ? "yes" : "NO"});
        }
    }

    std::fputs(table.render(
        "E9: approximation aggressiveness (geomean over perlbmk/vpr/"
        "gcc; correctness must hold in every row)").c_str(), stdout);
    return 0;
}

/**
 * @file
 * T1 — the simulated machine configuration table (the paper's
 * "simulation parameters" table), plus the distiller defaults.
 */

#include <cstdio>

#include "distill/distiller.hh"
#include "mssp/config.hh"

using namespace mssp;

int
main()
{
    MsspConfig cfg;
    std::printf("== T1: simulated MSSP machine configuration ==\n");
    std::printf("%s", cfg.toString().c_str());

    DistillerOptions dopts = DistillerOptions::paperPreset();
    std::printf("\n== distiller (paper preset) ==\n");
    std::printf("  %-22s %-10.3f %s\n", "biasThreshold",
                dopts.biasThreshold,
                "prune never-observed directions only at 1.0");
    std::printf("  %-22s %-10llu %s\n", "minBranchSamples",
                static_cast<unsigned long long>(dopts.minBranchSamples),
                "profile support required to prune");
    std::printf("  %-22s %-10s %s\n", "valueSpec",
                dopts.enableValueSpec ? "on" : "off",
                "link-time constant loads");
    std::printf("  %-22s %-10s %s\n", "silentStoreElim",
                dopts.enableSilentStoreElim ? "on" : "off",
                "drop >=99.5%-silent stores");
    std::printf("  %-22s %-10llu %s\n", "targetTaskSize",
                static_cast<unsigned long long>(
                    dopts.forkSelect.targetTaskSize),
                "expected task length (insts)");
    return 0;
}

/**
 * @file
 * E8 — distiller ablation: contribution of each pass to the master's
 * dynamic path reduction and to end speedup (geomean over the suite).
 *
 * Expected shape: branch pruning + DCE carry most of the reduction
 * (they remove the assertion/debug fat and its feeding computation);
 * the memory speculations (silent stores, value spec) add the rest;
 * "none" (fork markers only) sits slightly above 100% dynamic ratio.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "eval/experiment.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"

using namespace mssp;

namespace
{

struct Variant
{
    const char *name;
    DistillerOptions opts;
};

std::vector<Variant>
variants()
{
    DistillerOptions none;
    none.enableBranchPrune = false;
    none.enableConstFold = false;
    none.enableDce = false;

    DistillerOptions prune = none;
    prune.enableBranchPrune = true;

    DistillerOptions prune_dce = prune;
    prune_dce.enableDce = true;

    DistillerOptions safe = prune_dce;
    safe.enableConstFold = true;

    DistillerOptions stores = safe;
    stores.enableSilentStoreElim = true;
    stores.silentStoreThreshold = 0.995;

    DistillerOptions full = DistillerOptions::paperPreset();

    return {
        {"none (forks only)", none},
        {"+branch prune", prune},
        {"+dce", prune_dce},
        {"+const fold", safe},
        {"+silent stores", stores},
        {"+value spec (full)", full},
    };
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    unsigned jobs = benchJobs(argc, argv, "fig_ablation");
    Table table({"distiller variant", "dyn ratio", "speedup",
                 "squash/1k tasks"});

    const auto vars = variants();
    const auto workloads = specAnalogues();

    // One job per (variant, workload); results merge in canonical
    // order so geomeans and FAIL diagnostics match a serial sweep.
    std::vector<std::function<WorkloadRun()>> work;
    for (const auto &variant : vars) {
        for (const auto &wl : workloads) {
            work.push_back([&variant, &wl] {
                MsspConfig cfg;
                return runWorkload(wl, cfg, variant.opts);
            });
        }
    }
    std::vector<WorkloadRun> runs =
        runSharded<WorkloadRun>(jobs, std::move(work));

    for (size_t v = 0; v < vars.size(); ++v) {
        const Variant &variant = vars[v];
        std::vector<double> ratios;
        std::vector<double> speedups;
        uint64_t squashes = 0;
        uint64_t forked = 0;
        for (size_t w = 0; w < workloads.size(); ++w) {
            const WorkloadRun &run = runs[v * workloads.size() + w];
            if (!run.ok) {
                std::fprintf(stderr, "FAIL: %s on %s\n", variant.name,
                             workloads[w].name.c_str());
                continue;
            }
            ratios.push_back(run.distillRatio);
            speedups.push_back(run.speedup);
            squashes += run.counters.squashEvents;
            forked += run.counters.tasksForked;
        }
        double squash_rate = forked
            ? 1000.0 * static_cast<double>(squashes) /
                  static_cast<double>(forked)
            : 0.0;
        table.addRow({variant.name, fmtPct(geomean(ratios)),
                      fmt2(geomean(speedups)), fmt2(squash_rate)});
    }

    std::fputs(table.render(
        "E8: distiller pass ablation (geomean over 12 workloads, "
        "8 slaves)").c_str(), stdout);
    return 0;
}

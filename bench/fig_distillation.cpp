/**
 * @file
 * E1 — distillation effectiveness: static and dynamic instruction
 * counts of the distilled program relative to the original, plus the
 * per-pass removal breakdown, one row per benchmark.
 *
 * Expected shape: the master's dynamic path is 60-90% of the original
 * for most workloads (lower is stronger distillation); the pure-ALU
 * eon analogue stays near/above 100% (nothing to remove, fork markers
 * add overhead).
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "eval/experiment.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"

using namespace mssp;

int
main(int argc, char **argv)
{
    setQuiet(true);
    unsigned jobs = benchJobs(argc, argv, "fig_distillation");
    Table table({"benchmark", "static orig", "static dist",
                 "dyn ratio", "pruned", "dce", "folded", "stores",
                 "vspec", "sites"});

    auto workloads = specAnalogues();
    std::vector<std::function<WorkloadRun()>> work;
    for (const auto &wl : workloads) {
        work.push_back([&wl] {
            MsspConfig cfg;
            return runWorkload(wl, cfg,
                               DistillerOptions::paperPreset());
        });
    }

    std::vector<double> ratios;
    for (const WorkloadRun &run :
         runSharded<WorkloadRun>(jobs, std::move(work))) {
        const DistillReport &r = run.report;
        ratios.push_back(run.distillRatio);
        table.addRow({
            run.name,
            std::to_string(r.origStaticInsts),
            std::to_string(r.distilledStaticInsts),
            fmtPct(run.distillRatio),
            std::to_string(r.branchesToJump + r.branchesToFall),
            std::to_string(r.dceRemoved),
            std::to_string(r.constFolded),
            std::to_string(r.storesElided),
            std::to_string(r.loadsValueSpeced),
            std::to_string(r.forkSites),
        });
    }
    table.addRow({"geomean", "", "", fmtPct(geomean(ratios)), "", "",
                  "", "", "", ""});

    std::fputs(table.render(
        "E1: distillation effectiveness (dyn ratio = master dynamic "
        "path / original dynamic path)").c_str(), stdout);
    return 0;
}

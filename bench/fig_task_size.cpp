/**
 * @file
 * E5 — sensitivity to task size: speedup vs the distiller's target
 * task length, for three representative workloads.
 *
 * Expected shape: an interior optimum. Small tasks are dominated by
 * fork/commit overheads; very large tasks lose overlap, stress the
 * runaway cap, and make squashes expensive.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "eval/experiment.hh"
#include "sim/logging.hh"

using namespace mssp;

int
main()
{
    setQuiet(true);
    const std::vector<uint64_t> targets = {10, 25, 50, 100, 150, 300,
                                           600, 1200};
    const std::vector<std::string> names = {"perlbmk", "mcf",
                                            "parser"};

    std::vector<std::string> headers = {"target"};
    for (const auto &n : names) {
        headers.push_back(n);
        headers.push_back(n + " task");
    }
    Table table(headers);

    for (uint64_t target : targets) {
        std::vector<std::string> row = {std::to_string(target)};
        for (const auto &name : names) {
            Workload wl = workloadByName(name);
            DistillerOptions dopts = DistillerOptions::paperPreset();
            dopts.forkSelect.targetTaskSize = target;
            MsspConfig cfg;
            WorkloadRun run = runWorkload(wl, cfg, dopts);
            row.push_back(run.ok ? fmt2(run.speedup) : "FAIL");
            row.push_back(fmt2(run.meanTaskSize));
        }
        table.addRow(row);
    }

    std::fputs(table.render(
        "E5: speedup vs target task size (8 slaves; 'task' = "
        "measured mean committed task length)").c_str(), stdout);
    return 0;
}

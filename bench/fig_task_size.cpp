/**
 * @file
 * E5 — sensitivity to task size: speedup vs the distiller's target
 * task length, for three representative workloads.
 *
 * Expected shape: an interior optimum. Small tasks are dominated by
 * fork/commit overheads; very large tasks lose overlap, stress the
 * runaway cap, and make squashes expensive.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "eval/experiment.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"

using namespace mssp;

int
main(int argc, char **argv)
{
    setQuiet(true);
    unsigned jobs = benchJobs(argc, argv, "fig_task_size");
    const std::vector<uint64_t> targets = {10, 25, 50, 100, 150, 300,
                                           600, 1200};
    const std::vector<std::string> names = {"perlbmk", "mcf",
                                            "parser"};

    std::vector<std::string> headers = {"target"};
    for (const auto &n : names) {
        headers.push_back(n);
        headers.push_back(n + " task");
    }
    Table table(headers);

    std::vector<std::function<WorkloadRun()>> work;
    for (uint64_t target : targets) {
        for (const auto &name : names) {
            work.push_back([name, target] {
                Workload wl = workloadByName(name);
                DistillerOptions dopts =
                    DistillerOptions::paperPreset();
                dopts.forkSelect.targetTaskSize = target;
                MsspConfig cfg;
                return runWorkload(wl, cfg, dopts);
            });
        }
    }
    std::vector<WorkloadRun> runs =
        runSharded<WorkloadRun>(jobs, std::move(work));

    size_t next = 0;
    for (uint64_t target : targets) {
        std::vector<std::string> row = {std::to_string(target)};
        for (size_t i = 0; i < names.size(); ++i) {
            const WorkloadRun &run = runs[next++];
            row.push_back(run.ok ? fmt2(run.speedup) : "FAIL");
            row.push_back(fmt2(run.meanTaskSize));
        }
        table.addRow(row);
    }

    std::fputs(table.render(
        "E5: speedup vs target task size (8 slaves; 'task' = "
        "measured mean committed task length)").c_str(), stdout);
    return 0;
}

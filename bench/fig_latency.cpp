/**
 * @file
 * E7 — sensitivity to communication latency: speedup vs fork/commit
 * transfer latency (and, separately, vs the slave's read-through
 * latency to architected state).
 *
 * Expected shape: graceful degradation — checkpoint transfer and
 * commit are off the critical path while enough tasks are in flight,
 * so doubling latency costs far less than a factor of two.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "eval/experiment.hh"
#include "sim/logging.hh"

using namespace mssp;

int
main()
{
    setQuiet(true);
    const std::vector<Cycle> latencies = {2, 4, 8, 16, 32, 64};
    const std::vector<std::string> names = {"perlbmk", "mcf",
                                            "parser"};

    std::vector<PreparedWorkload> prepared;
    for (const auto &name : names) {
        Workload wl = workloadByName(name);
        prepared.push_back(prepare(wl.refSource, wl.trainSource,
                                   DistillerOptions::paperPreset()));
    }

    {
        std::vector<std::string> headers = {"fork/commit lat"};
        for (const auto &n : names)
            headers.push_back(n);
        Table table(headers);
        for (Cycle lat : latencies) {
            std::vector<std::string> row = {std::to_string(lat)};
            for (size_t i = 0; i < names.size(); ++i) {
                MsspConfig cfg;
                cfg.forkLatency = lat;
                cfg.commitLatency = lat;
                WorkloadRun run = runPrepared(names[i], prepared[i],
                                              cfg);
                row.push_back(run.ok ? fmt2(run.speedup) : "FAIL");
            }
            table.addRow(row);
        }
        std::fputs(table.render(
            "E7a: speedup vs fork/commit latency (cycles)").c_str(),
            stdout);
    }

    {
        std::vector<std::string> headers = {"L2 read lat"};
        for (const auto &n : names)
            headers.push_back(n);
        Table table(headers);
        for (Cycle lat : {0ull, 1ull, 2ull, 4ull, 8ull, 16ull}) {
            std::vector<std::string> row = {std::to_string(lat)};
            for (size_t i = 0; i < names.size(); ++i) {
                MsspConfig cfg;
                cfg.archReadLatency = lat;
                WorkloadRun run = runPrepared(names[i], prepared[i],
                                              cfg);
                row.push_back(run.ok ? fmt2(run.speedup) : "FAIL");
            }
            table.addRow(row);
        }
        std::fputs(table.render(
            "E7b: speedup vs slave read-through latency "
            "(cycles)").c_str(), stdout);
    }
    return 0;
}

/**
 * @file
 * E7 — sensitivity to communication latency: speedup vs fork/commit
 * transfer latency (and, separately, vs the slave's read-through
 * latency to architected state).
 *
 * Expected shape: graceful degradation — checkpoint transfer and
 * commit are off the critical path while enough tasks are in flight,
 * so doubling latency costs far less than a factor of two.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "eval/experiment.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"

using namespace mssp;

namespace
{

/** One latency sweep: run every (latency, workload) point sharded and
 *  render the table in canonical order. */
void
sweep(const char *title, const std::vector<Cycle> &latencies,
      const std::vector<std::string> &names,
      const std::vector<PreparedWorkload> &prepared, unsigned jobs,
      const std::function<void(MsspConfig &, Cycle)> &apply)
{
    std::vector<std::function<WorkloadRun()>> work;
    for (Cycle lat : latencies) {
        for (size_t i = 0; i < names.size(); ++i) {
            work.push_back([&names, &prepared, &apply, lat, i] {
                MsspConfig cfg;
                apply(cfg, lat);
                return runPrepared(names[i], prepared[i], cfg);
            });
        }
    }
    std::vector<WorkloadRun> runs =
        runSharded<WorkloadRun>(jobs, std::move(work));

    std::vector<std::string> headers = {"latency"};
    for (const auto &n : names)
        headers.push_back(n);
    Table table(headers);
    size_t next = 0;
    for (Cycle lat : latencies) {
        std::vector<std::string> row = {std::to_string(lat)};
        for (size_t i = 0; i < names.size(); ++i) {
            const WorkloadRun &run = runs[next++];
            row.push_back(run.ok ? fmt2(run.speedup) : "FAIL");
        }
        table.addRow(row);
    }
    std::fputs(table.render(title).c_str(), stdout);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    unsigned jobs = benchJobs(argc, argv, "fig_latency");
    const std::vector<std::string> names = {"perlbmk", "mcf",
                                            "parser"};

    std::vector<Workload> workloads;
    for (const auto &name : names)
        workloads.push_back(workloadByName(name));
    auto prepared = prepareAll(workloads,
                               DistillerOptions::paperPreset(), jobs);

    sweep("E7a: speedup vs fork/commit latency (cycles)",
          {2, 4, 8, 16, 32, 64}, names, prepared, jobs,
          [](MsspConfig &cfg, Cycle lat) {
              cfg.forkLatency = lat;
              cfg.commitLatency = lat;
          });
    sweep("E7b: speedup vs slave read-through latency (cycles)",
          {0, 1, 2, 4, 8, 16}, names, prepared, jobs,
          [](MsspConfig &cfg, Cycle lat) {
              cfg.archReadLatency = lat;
          });
    return 0;
}

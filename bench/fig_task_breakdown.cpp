/**
 * @file
 * E3 — task outcome breakdown: of all tasks the master forks, how
 * many commit cleanly vs are squashed (by reason) or discarded in a
 * squash cascade, one row per benchmark.
 *
 * Expected shape: with the honest (paper-preset) distiller, well over
 * 90% of tasks commit; squashes concentrate at phase boundaries.
 */

#include <cstdio>
#include <string>

#include "eval/experiment.hh"
#include "sim/logging.hh"

using namespace mssp;

int
main()
{
    setQuiet(true);
    Table table({"benchmark", "forked", "committed", "commit%",
                 "livein", "wrongpc", "overrun", "cascade",
                 "squashes", "mean task"});

    for (const auto &wl : specAnalogues()) {
        MsspConfig cfg;
        WorkloadRun run = runWorkload(wl, cfg,
                                      DistillerOptions::paperPreset());
        const MsspCounters &c = run.counters;
        double commit_frac =
            c.tasksForked ? static_cast<double>(c.tasksCommitted) /
                                static_cast<double>(c.tasksForked)
                          : 0.0;
        table.addRow({
            wl.name,
            std::to_string(c.tasksForked),
            std::to_string(c.tasksCommitted),
            fmtPct(commit_frac),
            std::to_string(c.tasksSquashedLiveIn),
            std::to_string(c.tasksSquashedWrongPc),
            std::to_string(c.tasksSquashedOverrun),
            std::to_string(c.tasksSquashedCascade),
            std::to_string(c.squashEvents),
            fmt2(run.meanTaskSize),
        });
    }

    std::fputs(table.render(
        "E3: task outcome breakdown (paper-preset distiller, "
        "8 slaves)").c_str(), stdout);
    return 0;
}

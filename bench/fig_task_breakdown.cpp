/**
 * @file
 * E3 — task outcome breakdown: of all tasks the master forks, how
 * many commit cleanly vs are squashed (by reason) or discarded in a
 * squash cascade, one row per benchmark.
 *
 * Expected shape: with the honest (paper-preset) distiller, well over
 * 90% of tasks commit; squashes concentrate at phase boundaries.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "eval/experiment.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"

using namespace mssp;

int
main(int argc, char **argv)
{
    setQuiet(true);
    unsigned jobs = benchJobs(argc, argv, "fig_task_breakdown");
    Table table({"benchmark", "forked", "committed", "commit%",
                 "livein", "wrongpc", "overrun", "cascade",
                 "squashes", "mean task"});

    auto workloads = specAnalogues();
    std::vector<std::function<WorkloadRun()>> work;
    for (const auto &wl : workloads) {
        work.push_back([&wl] {
            MsspConfig cfg;
            return runWorkload(wl, cfg,
                               DistillerOptions::paperPreset());
        });
    }

    for (const WorkloadRun &run :
         runSharded<WorkloadRun>(jobs, std::move(work))) {
        const MsspCounters &c = run.counters;
        double commit_frac =
            c.tasksForked ? static_cast<double>(c.tasksCommitted) /
                                static_cast<double>(c.tasksForked)
                          : 0.0;
        table.addRow({
            run.name,
            std::to_string(c.tasksForked),
            std::to_string(c.tasksCommitted),
            fmtPct(commit_frac),
            std::to_string(c.tasksSquashedLiveIn),
            std::to_string(c.tasksSquashedWrongPc),
            std::to_string(c.tasksSquashedOverrun),
            std::to_string(c.tasksSquashedCascade),
            std::to_string(c.squashEvents),
            fmt2(run.meanTaskSize),
        });
    }

    std::fputs(table.render(
        "E3: task outcome breakdown (paper-preset distiller, "
        "8 slaves)").c_str(), stdout);
    return 0;
}

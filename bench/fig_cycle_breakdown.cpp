/**
 * @file
 * S1 (supplementary) — where slave cycles go: for each benchmark,
 * the fraction of aggregate slave-processor cycles spent executing,
 * stalled on architected-state reads, paused waiting for an end
 * condition, or idle, plus the slave-L1 hit rate on read-throughs.
 *
 * Expected shape: execution dominates; pause cycles concentrate on
 * the youngest task; idle cycles grow with slave count beyond the
 * saturation knee (E6's story seen from the other side).
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "eval/experiment.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"

using namespace mssp;

int
main(int argc, char **argv)
{
    setQuiet(true);
    unsigned jobs = benchJobs(argc, argv, "fig_cycle_breakdown");
    Table table({"benchmark", "exec", "archStall", "paused", "idle",
                 "L1 hit rate"});

    auto workloads = specAnalogues();
    std::vector<std::function<WorkloadRun()>> work;
    for (const auto &wl : workloads) {
        work.push_back([&wl] {
            MsspConfig cfg;
            return runWorkload(wl, cfg,
                               DistillerOptions::paperPreset());
        });
    }

    for (const WorkloadRun &run :
         runSharded<WorkloadRun>(jobs, std::move(work))) {
        MsspConfig cfg;
        const MsspCounters &c = run.counters;
        double total = static_cast<double>(
            run.msspCycles * cfg.numSlaves);
        double exec = static_cast<double>(c.slaveInsts) / total;
        double stall =
            static_cast<double>(c.slaveArchStallCycles) / total;
        double paused =
            static_cast<double>(c.slavePauseCycles) / total;
        double idle = static_cast<double>(c.slaveIdleCycles) / total;
        double l1_rate =
            (c.l1Hits + c.l1Misses)
                ? static_cast<double>(c.l1Hits) /
                      static_cast<double>(c.l1Hits + c.l1Misses)
                : 0.0;
        table.addRow({run.name, fmtPct(exec), fmtPct(stall),
                      fmtPct(paused), fmtPct(idle), fmtPct(l1_rate)});
    }

    std::fputs(table.render(
        "S1: slave cycle breakdown (fractions of slaves x cycles; "
        "8 slaves)").c_str(), stdout);
    return 0;
}

# Empty compiler generated dependencies file for mssp-run.
# This may be replaced when dependencies are built.

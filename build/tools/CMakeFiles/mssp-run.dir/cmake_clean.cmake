file(REMOVE_RECURSE
  "CMakeFiles/mssp-run.dir/mssp-run.cc.o"
  "CMakeFiles/mssp-run.dir/mssp-run.cc.o.d"
  "mssp-run"
  "mssp-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mssp-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

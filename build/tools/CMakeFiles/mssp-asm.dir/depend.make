# Empty dependencies file for mssp-asm.
# This may be replaced when dependencies are built.

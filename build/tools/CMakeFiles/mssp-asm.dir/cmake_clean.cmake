file(REMOVE_RECURSE
  "CMakeFiles/mssp-asm.dir/mssp-asm.cc.o"
  "CMakeFiles/mssp-asm.dir/mssp-asm.cc.o.d"
  "mssp-asm"
  "mssp-asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mssp-asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/mssp-distill.dir/mssp-distill.cc.o"
  "CMakeFiles/mssp-distill.dir/mssp-distill.cc.o.d"
  "mssp-distill"
  "mssp-distill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mssp-distill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

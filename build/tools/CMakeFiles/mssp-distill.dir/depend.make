# Empty dependencies file for mssp-distill.
# This may be replaced when dependencies are built.

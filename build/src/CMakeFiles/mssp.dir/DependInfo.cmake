
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/arch_state.cc" "src/CMakeFiles/mssp.dir/arch/arch_state.cc.o" "gcc" "src/CMakeFiles/mssp.dir/arch/arch_state.cc.o.d"
  "/root/repo/src/arch/paged_mem.cc" "src/CMakeFiles/mssp.dir/arch/paged_mem.cc.o" "gcc" "src/CMakeFiles/mssp.dir/arch/paged_mem.cc.o.d"
  "/root/repo/src/arch/state_delta.cc" "src/CMakeFiles/mssp.dir/arch/state_delta.cc.o" "gcc" "src/CMakeFiles/mssp.dir/arch/state_delta.cc.o.d"
  "/root/repo/src/asm/assembler.cc" "src/CMakeFiles/mssp.dir/asm/assembler.cc.o" "gcc" "src/CMakeFiles/mssp.dir/asm/assembler.cc.o.d"
  "/root/repo/src/asm/objfile.cc" "src/CMakeFiles/mssp.dir/asm/objfile.cc.o" "gcc" "src/CMakeFiles/mssp.dir/asm/objfile.cc.o.d"
  "/root/repo/src/asm/program.cc" "src/CMakeFiles/mssp.dir/asm/program.cc.o" "gcc" "src/CMakeFiles/mssp.dir/asm/program.cc.o.d"
  "/root/repo/src/cfg/cfg.cc" "src/CMakeFiles/mssp.dir/cfg/cfg.cc.o" "gcc" "src/CMakeFiles/mssp.dir/cfg/cfg.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/mssp.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/mssp.dir/core/pipeline.cc.o.d"
  "/root/repo/src/distill/ir.cc" "src/CMakeFiles/mssp.dir/distill/ir.cc.o" "gcc" "src/CMakeFiles/mssp.dir/distill/ir.cc.o.d"
  "/root/repo/src/distill/layout.cc" "src/CMakeFiles/mssp.dir/distill/layout.cc.o" "gcc" "src/CMakeFiles/mssp.dir/distill/layout.cc.o.d"
  "/root/repo/src/distill/passes.cc" "src/CMakeFiles/mssp.dir/distill/passes.cc.o" "gcc" "src/CMakeFiles/mssp.dir/distill/passes.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/mssp.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/mssp.dir/eval/experiment.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/mssp.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/mssp.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/seq_machine.cc" "src/CMakeFiles/mssp.dir/exec/seq_machine.cc.o" "gcc" "src/CMakeFiles/mssp.dir/exec/seq_machine.cc.o.d"
  "/root/repo/src/formal/abstract_model.cc" "src/CMakeFiles/mssp.dir/formal/abstract_model.cc.o" "gcc" "src/CMakeFiles/mssp.dir/formal/abstract_model.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/mssp.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/mssp.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/isa.cc" "src/CMakeFiles/mssp.dir/isa/isa.cc.o" "gcc" "src/CMakeFiles/mssp.dir/isa/isa.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/mssp.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/mssp.dir/mem/cache.cc.o.d"
  "/root/repo/src/mssp/baseline.cc" "src/CMakeFiles/mssp.dir/mssp/baseline.cc.o" "gcc" "src/CMakeFiles/mssp.dir/mssp/baseline.cc.o.d"
  "/root/repo/src/mssp/config.cc" "src/CMakeFiles/mssp.dir/mssp/config.cc.o" "gcc" "src/CMakeFiles/mssp.dir/mssp/config.cc.o.d"
  "/root/repo/src/mssp/machine.cc" "src/CMakeFiles/mssp.dir/mssp/machine.cc.o" "gcc" "src/CMakeFiles/mssp.dir/mssp/machine.cc.o.d"
  "/root/repo/src/mssp/master.cc" "src/CMakeFiles/mssp.dir/mssp/master.cc.o" "gcc" "src/CMakeFiles/mssp.dir/mssp/master.cc.o.d"
  "/root/repo/src/mssp/slave.cc" "src/CMakeFiles/mssp.dir/mssp/slave.cc.o" "gcc" "src/CMakeFiles/mssp.dir/mssp/slave.cc.o.d"
  "/root/repo/src/profile/fork_select.cc" "src/CMakeFiles/mssp.dir/profile/fork_select.cc.o" "gcc" "src/CMakeFiles/mssp.dir/profile/fork_select.cc.o.d"
  "/root/repo/src/profile/profiler.cc" "src/CMakeFiles/mssp.dir/profile/profiler.cc.o" "gcc" "src/CMakeFiles/mssp.dir/profile/profiler.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/mssp.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/mssp.dir/sim/logging.cc.o.d"
  "/root/repo/src/stats/stats.cc" "src/CMakeFiles/mssp.dir/stats/stats.cc.o" "gcc" "src/CMakeFiles/mssp.dir/stats/stats.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/mssp.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/mssp.dir/trace/trace.cc.o.d"
  "/root/repo/src/util/file.cc" "src/CMakeFiles/mssp.dir/util/file.cc.o" "gcc" "src/CMakeFiles/mssp.dir/util/file.cc.o.d"
  "/root/repo/src/util/string_utils.cc" "src/CMakeFiles/mssp.dir/util/string_utils.cc.o" "gcc" "src/CMakeFiles/mssp.dir/util/string_utils.cc.o.d"
  "/root/repo/src/workloads/micro.cc" "src/CMakeFiles/mssp.dir/workloads/micro.cc.o" "gcc" "src/CMakeFiles/mssp.dir/workloads/micro.cc.o.d"
  "/root/repo/src/workloads/random_program.cc" "src/CMakeFiles/mssp.dir/workloads/random_program.cc.o" "gcc" "src/CMakeFiles/mssp.dir/workloads/random_program.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/mssp.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/mssp.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/wl_bzip2.cc" "src/CMakeFiles/mssp.dir/workloads/wl_bzip2.cc.o" "gcc" "src/CMakeFiles/mssp.dir/workloads/wl_bzip2.cc.o.d"
  "/root/repo/src/workloads/wl_crafty.cc" "src/CMakeFiles/mssp.dir/workloads/wl_crafty.cc.o" "gcc" "src/CMakeFiles/mssp.dir/workloads/wl_crafty.cc.o.d"
  "/root/repo/src/workloads/wl_eon.cc" "src/CMakeFiles/mssp.dir/workloads/wl_eon.cc.o" "gcc" "src/CMakeFiles/mssp.dir/workloads/wl_eon.cc.o.d"
  "/root/repo/src/workloads/wl_gap.cc" "src/CMakeFiles/mssp.dir/workloads/wl_gap.cc.o" "gcc" "src/CMakeFiles/mssp.dir/workloads/wl_gap.cc.o.d"
  "/root/repo/src/workloads/wl_gcc.cc" "src/CMakeFiles/mssp.dir/workloads/wl_gcc.cc.o" "gcc" "src/CMakeFiles/mssp.dir/workloads/wl_gcc.cc.o.d"
  "/root/repo/src/workloads/wl_gzip.cc" "src/CMakeFiles/mssp.dir/workloads/wl_gzip.cc.o" "gcc" "src/CMakeFiles/mssp.dir/workloads/wl_gzip.cc.o.d"
  "/root/repo/src/workloads/wl_mcf.cc" "src/CMakeFiles/mssp.dir/workloads/wl_mcf.cc.o" "gcc" "src/CMakeFiles/mssp.dir/workloads/wl_mcf.cc.o.d"
  "/root/repo/src/workloads/wl_parser.cc" "src/CMakeFiles/mssp.dir/workloads/wl_parser.cc.o" "gcc" "src/CMakeFiles/mssp.dir/workloads/wl_parser.cc.o.d"
  "/root/repo/src/workloads/wl_perlbmk.cc" "src/CMakeFiles/mssp.dir/workloads/wl_perlbmk.cc.o" "gcc" "src/CMakeFiles/mssp.dir/workloads/wl_perlbmk.cc.o.d"
  "/root/repo/src/workloads/wl_twolf.cc" "src/CMakeFiles/mssp.dir/workloads/wl_twolf.cc.o" "gcc" "src/CMakeFiles/mssp.dir/workloads/wl_twolf.cc.o.d"
  "/root/repo/src/workloads/wl_vortex.cc" "src/CMakeFiles/mssp.dir/workloads/wl_vortex.cc.o" "gcc" "src/CMakeFiles/mssp.dir/workloads/wl_vortex.cc.o.d"
  "/root/repo/src/workloads/wl_vpr.cc" "src/CMakeFiles/mssp.dir/workloads/wl_vpr.cc.o" "gcc" "src/CMakeFiles/mssp.dir/workloads/wl_vpr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for mssp.
# This may be replaced when dependencies are built.

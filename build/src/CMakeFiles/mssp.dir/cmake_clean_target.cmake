file(REMOVE_RECURSE
  "libmssp.a"
)

# Empty compiler generated dependencies file for test_distill_variants.
# This may be replaced when dependencies are built.

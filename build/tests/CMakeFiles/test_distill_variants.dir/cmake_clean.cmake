file(REMOVE_RECURSE
  "CMakeFiles/test_distill_variants.dir/test_distill_variants.cpp.o"
  "CMakeFiles/test_distill_variants.dir/test_distill_variants.cpp.o.d"
  "test_distill_variants"
  "test_distill_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distill_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_objfile.dir/test_objfile.cpp.o"
  "CMakeFiles/test_objfile.dir/test_objfile.cpp.o.d"
  "test_objfile"
  "test_objfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_objfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

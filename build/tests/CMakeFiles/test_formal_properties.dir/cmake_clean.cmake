file(REMOVE_RECURSE
  "CMakeFiles/test_formal_properties.dir/test_formal_properties.cpp.o"
  "CMakeFiles/test_formal_properties.dir/test_formal_properties.cpp.o.d"
  "test_formal_properties"
  "test_formal_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_formal_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_formal_properties.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_mssp_machine.dir/test_mssp_machine.cpp.o"
  "CMakeFiles/test_mssp_machine.dir/test_mssp_machine.cpp.o.d"
  "test_mssp_machine"
  "test_mssp_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mssp_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_dumps.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_dumps.dir/test_dumps.cpp.o"
  "CMakeFiles/test_dumps.dir/test_dumps.cpp.o.d"
  "test_dumps"
  "test_dumps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dumps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_abstract_model.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_distill.dir/test_distill.cpp.o"
  "CMakeFiles/test_distill.dir/test_distill.cpp.o.d"
  "test_distill"
  "test_distill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_slave.dir/test_slave.cpp.o"
  "CMakeFiles/test_slave.dir/test_slave.cpp.o.d"
  "test_slave"
  "test_slave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

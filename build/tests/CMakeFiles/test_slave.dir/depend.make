# Empty dependencies file for test_slave.
# This may be replaced when dependencies are built.

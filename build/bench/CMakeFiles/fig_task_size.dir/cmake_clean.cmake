file(REMOVE_RECURSE
  "CMakeFiles/fig_task_size.dir/fig_task_size.cpp.o"
  "CMakeFiles/fig_task_size.dir/fig_task_size.cpp.o.d"
  "fig_task_size"
  "fig_task_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_task_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

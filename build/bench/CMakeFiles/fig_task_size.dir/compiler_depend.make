# Empty compiler generated dependencies file for fig_task_size.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig_task_breakdown.
# This may be replaced when dependencies are built.

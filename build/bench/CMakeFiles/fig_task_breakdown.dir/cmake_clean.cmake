file(REMOVE_RECURSE
  "CMakeFiles/fig_task_breakdown.dir/fig_task_breakdown.cpp.o"
  "CMakeFiles/fig_task_breakdown.dir/fig_task_breakdown.cpp.o.d"
  "fig_task_breakdown"
  "fig_task_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_task_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig_latency.dir/fig_latency.cpp.o"
  "CMakeFiles/fig_latency.dir/fig_latency.cpp.o.d"
  "fig_latency"
  "fig_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig_cycle_breakdown.dir/fig_cycle_breakdown.cpp.o"
  "CMakeFiles/fig_cycle_breakdown.dir/fig_cycle_breakdown.cpp.o.d"
  "fig_cycle_breakdown"
  "fig_cycle_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_cycle_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig_cycle_breakdown.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig_liveins.
# This may be replaced when dependencies are built.

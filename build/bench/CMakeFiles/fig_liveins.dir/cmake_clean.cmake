file(REMOVE_RECURSE
  "CMakeFiles/fig_liveins.dir/fig_liveins.cpp.o"
  "CMakeFiles/fig_liveins.dir/fig_liveins.cpp.o.d"
  "fig_liveins"
  "fig_liveins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_liveins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

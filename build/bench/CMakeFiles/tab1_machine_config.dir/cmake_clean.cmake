file(REMOVE_RECURSE
  "CMakeFiles/tab1_machine_config.dir/tab1_machine_config.cpp.o"
  "CMakeFiles/tab1_machine_config.dir/tab1_machine_config.cpp.o.d"
  "tab1_machine_config"
  "tab1_machine_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_machine_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

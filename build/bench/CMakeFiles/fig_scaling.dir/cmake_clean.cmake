file(REMOVE_RECURSE
  "CMakeFiles/fig_scaling.dir/fig_scaling.cpp.o"
  "CMakeFiles/fig_scaling.dir/fig_scaling.cpp.o.d"
  "fig_scaling"
  "fig_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

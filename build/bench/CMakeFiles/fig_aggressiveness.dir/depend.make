# Empty dependencies file for fig_aggressiveness.
# This may be replaced when dependencies are built.

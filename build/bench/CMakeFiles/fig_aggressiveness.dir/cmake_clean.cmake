file(REMOVE_RECURSE
  "CMakeFiles/fig_aggressiveness.dir/fig_aggressiveness.cpp.o"
  "CMakeFiles/fig_aggressiveness.dir/fig_aggressiveness.cpp.o.d"
  "fig_aggressiveness"
  "fig_aggressiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_aggressiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

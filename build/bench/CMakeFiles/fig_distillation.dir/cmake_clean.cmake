file(REMOVE_RECURSE
  "CMakeFiles/fig_distillation.dir/fig_distillation.cpp.o"
  "CMakeFiles/fig_distillation.dir/fig_distillation.cpp.o.d"
  "fig_distillation"
  "fig_distillation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_distillation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

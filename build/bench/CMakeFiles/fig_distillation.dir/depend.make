# Empty dependencies file for fig_distillation.
# This may be replaced when dependencies are built.

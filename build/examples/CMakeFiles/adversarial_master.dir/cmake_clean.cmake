file(REMOVE_RECURSE
  "CMakeFiles/adversarial_master.dir/adversarial_master.cpp.o"
  "CMakeFiles/adversarial_master.dir/adversarial_master.cpp.o.d"
  "adversarial_master"
  "adversarial_master.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_master.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

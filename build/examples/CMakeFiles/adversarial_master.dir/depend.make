# Empty dependencies file for adversarial_master.
# This may be replaced when dependencies are built.

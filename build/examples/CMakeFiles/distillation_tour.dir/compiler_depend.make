# Empty compiler generated dependencies file for distillation_tour.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/distillation_tour.dir/distillation_tour.cpp.o"
  "CMakeFiles/distillation_tour.dir/distillation_tour.cpp.o.d"
  "distillation_tour"
  "distillation_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distillation_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

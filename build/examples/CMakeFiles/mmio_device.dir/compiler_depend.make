# Empty compiler generated dependencies file for mmio_device.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mmio_device.dir/mmio_device.cpp.o"
  "CMakeFiles/mmio_device.dir/mmio_device.cpp.o.d"
  "mmio_device"
  "mmio_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmio_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
